// Unit tests for the fault subsystem's pure layer: FaultPlan, the
// deterministic injector (decisions are hashes, not stateful draws), the
// kill schedules, and the FNV-1a message checksum.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "fault/injector.hpp"

namespace vmp {
namespace {

TEST(FaultPlan, NoneIsInert) {
  const FaultPlan p = FaultPlan::none();
  EXPECT_FALSE(p.has_transient());
  EXPECT_TRUE(p.link_kills.empty());
  EXPECT_TRUE(p.node_kills.empty());
  FaultInjector fi(p);
  for (std::uint64_t r = 0; r < 64; ++r)
    for (std::uint32_t src = 0; src < 16; ++src)
      for (int d = 0; d < 4; ++d) {
        const FaultOutcome o = fi.decide(r, 0, src, d);
        EXPECT_FALSE(o.drop);
        EXPECT_FALSE(o.corrupt);
        EXPECT_EQ(o.spike_us, 0.0);
        EXPECT_FALSE(fi.link_dead(r, src, d));
        EXPECT_FALSE(fi.node_dead(r, src));
      }
}

TEST(FaultInjector, DecideIsPureAndReproducible) {
  const FaultPlan p = FaultPlan::transient(42, 0.3, 0.2, 0.1, 5.0);
  FaultInjector a(p), b(p);
  for (std::uint64_t r = 0; r < 32; ++r)
    for (int attempt = 0; attempt < 4; ++attempt)
      for (std::uint32_t src = 0; src < 8; ++src)
        for (int d = 0; d < 3; ++d) {
          const FaultOutcome oa = a.decide(r, attempt, src, d);
          const FaultOutcome ob = b.decide(r, attempt, src, d);
          EXPECT_EQ(oa.drop, ob.drop);
          EXPECT_EQ(oa.corrupt, ob.corrupt);
          EXPECT_EQ(oa.spike_us, ob.spike_us);
          // Repeat call on the same injector: no hidden state.
          const FaultOutcome oa2 = a.decide(r, attempt, src, d);
          EXPECT_EQ(oa.drop, oa2.drop);
          EXPECT_EQ(oa.corrupt, oa2.corrupt);
          EXPECT_EQ(oa.spike_us, oa2.spike_us);
        }
}

TEST(FaultInjector, DifferentSeedsDecideDifferently) {
  FaultInjector a(FaultPlan::transient(1, 0.5, 0.0));
  FaultInjector b(FaultPlan::transient(2, 0.5, 0.0));
  int differing = 0;
  for (std::uint64_t r = 0; r < 256; ++r)
    differing += a.decide(r, 0, 0, 0).drop != b.decide(r, 0, 0, 0).drop;
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, EmpiricalRatesTrackThePlan) {
  const double kDrop = 0.05, kCorrupt = 0.03, kSpike = 0.02;
  FaultInjector fi(FaultPlan::transient(7, kDrop, kCorrupt, kSpike, 9.0));
  int drops = 0, corrupts = 0, spikes = 0, n = 0;
  for (std::uint64_t r = 0; r < 500; ++r)
    for (std::uint32_t src = 0; src < 32; ++src)
      for (int d = 0; d < 5; ++d) {
        const FaultOutcome o = fi.decide(r, 0, src, d);
        drops += o.drop;
        corrupts += o.corrupt;
        spikes += o.spike_us > 0.0;
        if (o.spike_us > 0.0) EXPECT_EQ(o.spike_us, 9.0);
        EXPECT_FALSE(o.drop && o.corrupt);  // at most one transport fault
        ++n;
      }
  const double N = n;
  EXPECT_NEAR(drops / N, kDrop, 0.01);
  EXPECT_NEAR(corrupts / N, kCorrupt, 0.01);
  EXPECT_NEAR(spikes / N, kSpike, 0.01);
}

TEST(FaultInjector, RetriesRedrawIndependently) {
  // A message dropped at attempt 0 must get a fresh draw at attempt 1 —
  // otherwise retry could never succeed.  With drop_prob = 0.5 the retry
  // succeeds about half the time; check both outcomes occur.
  FaultInjector fi(FaultPlan::transient(11, 0.5, 0.0));
  bool retry_ok = false, retry_fails = false;
  for (std::uint64_t r = 0; r < 256; ++r) {
    if (!fi.decide(r, 0, 3, 1).drop) continue;
    (fi.decide(r, 1, 3, 1).drop ? retry_fails : retry_ok) = true;
  }
  EXPECT_TRUE(retry_ok);
  EXPECT_TRUE(retry_fails);
}

TEST(FaultInjector, LinkKillScheduleIsUndirectedAndRoundGated) {
  FaultPlan p;
  p.link_kills.push_back({/*from_round=*/5, /*node=*/6, /*dim=*/1});
  FaultInjector fi(p);
  EXPECT_FALSE(fi.link_dead(0, 6, 1));
  EXPECT_FALSE(fi.link_dead(4, 6, 1));
  EXPECT_TRUE(fi.link_dead(5, 6, 1));
  EXPECT_TRUE(fi.link_dead(100, 6, 1));
  // The edge (6, 6^2) is undirected: the partner sees it dead too.
  EXPECT_TRUE(fi.link_dead(5, 6u ^ 2u, 1));
  // Other links of the same node stay alive.
  EXPECT_FALSE(fi.link_dead(5, 6, 0));
  EXPECT_FALSE(fi.link_dead(5, 6, 2));
}

TEST(FaultInjector, NodeKillScheduleIsRoundGated) {
  FaultPlan p;
  p.node_kills.push_back({/*from_round=*/3, /*node=*/2});
  FaultInjector fi(p);
  EXPECT_FALSE(fi.node_dead(2, 2));
  EXPECT_TRUE(fi.node_dead(3, 2));
  EXPECT_TRUE(fi.node_dead(99, 2));
  EXPECT_FALSE(fi.node_dead(3, 1));
}

TEST(FaultInjector, RoundCounterAdvancesOncePerRound) {
  FaultInjector fi(FaultPlan::none());
  EXPECT_EQ(fi.rounds_started(), 0u);
  EXPECT_EQ(fi.begin_round(), 0u);
  EXPECT_EQ(fi.begin_round(), 1u);
  EXPECT_EQ(fi.rounds_started(), 2u);
}

TEST(FaultInjector, MessageHashIsPureAndArgSensitive) {
  FaultInjector fi(FaultPlan::transient(99, 0.1, 0.1));
  const std::uint64_t h = fi.message_hash(1, 0, 2, 3);
  EXPECT_EQ(h, fi.message_hash(1, 0, 2, 3));
  EXPECT_NE(h, fi.message_hash(2, 0, 2, 3));
  EXPECT_NE(h, fi.message_hash(1, 1, 2, 3));
  EXPECT_NE(h, fi.message_hash(1, 0, 3, 3));
  EXPECT_NE(h, fi.message_hash(1, 0, 2, 2));
}

TEST(Fnv1a, MatchesKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Fnv1a, DetectsEverySingleBitFlip) {
  double payload[4] = {1.0, -2.5, 3.25, 0.0};
  const std::uint64_t sum = fnv1a(payload, sizeof(payload));
  unsigned char bytes[sizeof(payload)];
  std::memcpy(bytes, payload, sizeof(payload));
  for (std::size_t i = 0; i < sizeof(payload); ++i)
    for (int b = 0; b < 8; ++b) {
      bytes[i] ^= static_cast<unsigned char>(1u << b);
      EXPECT_NE(fnv1a(bytes, sizeof(bytes)), sum)
          << "flip byte " << i << " bit " << b << " went undetected";
      bytes[i] ^= static_cast<unsigned char>(1u << b);
    }
}

}  // namespace
}  // namespace vmp
