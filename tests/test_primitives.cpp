// Unit + property tests for the four primitives: extract, insert,
// distribute, reduce — swept over grid shapes, layouts and matrix extents,
// checked against straight-line host references.
#include <gtest/gtest.h>

#include <memory>

#include "core/primitives.hpp"
#include "core/swap.hpp"
#include "embed/realign.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

struct PrimCase {
  int gr, gc;
  std::size_t nrows, ncols;
  MatrixLayout layout;
};

class PrimitiveSweep : public ::testing::TestWithParam<PrimCase> {
 protected:
  void SetUp() override {
    const PrimCase c = GetParam();
    cube = std::make_unique<Cube>(c.gr + c.gc, CostParams::cm2());
    grid = std::make_unique<Grid>(*cube, c.gr, c.gc);
    host = random_matrix(c.nrows, c.ncols, 99);
    A = std::make_unique<DistMatrix<double>>(*grid, c.nrows, c.ncols,
                                             c.layout);
    A->load(host);
  }

  double h(std::size_t i, std::size_t j) const {
    return host[i * GetParam().ncols + j];
  }

  std::unique_ptr<Cube> cube;
  std::unique_ptr<Grid> grid;
  std::vector<double> host;
  std::unique_ptr<DistMatrix<double>> A;
};

TEST_P(PrimitiveSweep, ReduceRowsSum) {
  const PrimCase c = GetParam();
  const DistVector<double> v = reduce_rows(*A, Plus<double>{});
  EXPECT_EQ(v.align(), Align::Rows);
  EXPECT_TRUE(v.replicas_consistent());
  const std::vector<double> got = v.to_host();
  for (std::size_t i = 0; i < c.nrows; ++i) {
    double want = 0;
    for (std::size_t j = 0; j < c.ncols; ++j) want += h(i, j);
    EXPECT_NEAR(got[i], want, 1e-12) << "row " << i;
  }
}

TEST_P(PrimitiveSweep, ReduceColsSum) {
  const PrimCase c = GetParam();
  const DistVector<double> v = reduce_cols(*A, Plus<double>{});
  EXPECT_EQ(v.align(), Align::Cols);
  EXPECT_TRUE(v.replicas_consistent());
  const std::vector<double> got = v.to_host();
  for (std::size_t j = 0; j < c.ncols; ++j) {
    double want = 0;
    for (std::size_t i = 0; i < c.nrows; ++i) want += h(i, j);
    EXPECT_NEAR(got[j], want, 1e-12) << "col " << j;
  }
}

TEST_P(PrimitiveSweep, ReduceRowsMaxExactlyMatchesHost) {
  const PrimCase c = GetParam();
  const DistVector<double> v = reduce_rows(*A, Max<double>{});
  const std::vector<double> got = v.to_host();
  for (std::size_t i = 0; i < c.nrows; ++i) {
    double want = std::numeric_limits<double>::lowest();
    for (std::size_t j = 0; j < c.ncols; ++j) want = std::max(want, h(i, j));
    EXPECT_EQ(got[i], want);  // max is exact: no rounding tolerance needed
  }
}

TEST_P(PrimitiveSweep, ExtractEveryRow) {
  const PrimCase c = GetParam();
  for (std::size_t i = 0; i < c.nrows; ++i) {
    const DistVector<double> v = extract_row(*A, i);
    EXPECT_EQ(v.align(), Align::Cols);
    EXPECT_TRUE(v.replicas_consistent());
    const std::vector<double> got = v.to_host();
    for (std::size_t j = 0; j < c.ncols; ++j) EXPECT_EQ(got[j], h(i, j));
  }
}

TEST_P(PrimitiveSweep, ExtractEveryCol) {
  const PrimCase c = GetParam();
  for (std::size_t j = 0; j < c.ncols; ++j) {
    const DistVector<double> v = extract_col(*A, j);
    EXPECT_EQ(v.align(), Align::Rows);
    EXPECT_TRUE(v.replicas_consistent());
    const std::vector<double> got = v.to_host();
    for (std::size_t i = 0; i < c.nrows; ++i) EXPECT_EQ(got[i], h(i, j));
  }
}

TEST_P(PrimitiveSweep, InsertThenExtractIsIdentity) {
  const PrimCase c = GetParam();
  const std::vector<double> fresh = random_vector(c.ncols, 123);
  DistVector<double> v(*grid, c.ncols, Align::Cols, c.layout.cols);
  v.load(fresh);
  const std::size_t i = c.nrows / 2;
  insert_row(*A, i, v);
  EXPECT_EQ(extract_row(*A, i).to_host(), fresh);
  // Other rows untouched.
  if (i + 1 < c.nrows) {
    const std::vector<double> other = extract_row(*A, i + 1).to_host();
    for (std::size_t j = 0; j < c.ncols; ++j) EXPECT_EQ(other[j], h(i + 1, j));
  }
}

TEST_P(PrimitiveSweep, InsertColThenExtractIsIdentity) {
  const PrimCase c = GetParam();
  const std::vector<double> fresh = random_vector(c.nrows, 124);
  DistVector<double> v(*grid, c.nrows, Align::Rows, c.layout.rows);
  v.load(fresh);
  const std::size_t j = c.ncols / 2;
  insert_col(*A, j, v);
  EXPECT_EQ(extract_col(*A, j).to_host(), fresh);
}

TEST_P(PrimitiveSweep, RangedInsertTouchesOnlyTheRange) {
  const PrimCase c = GetParam();
  if (c.nrows < 3) GTEST_SKIP();
  const std::vector<double> fresh = random_vector(c.nrows, 125);
  DistVector<double> v(*grid, c.nrows, Align::Rows, c.layout.rows);
  v.load(fresh);
  const std::size_t j = c.ncols / 2;
  const std::size_t lo = 1, hi = c.nrows - 1;
  insert_col_range(*A, j, v, lo, hi);
  const std::vector<double> got = extract_col(*A, j).to_host();
  for (std::size_t i = 0; i < c.nrows; ++i) {
    if (i >= lo && i < hi) {
      EXPECT_EQ(got[i], fresh[i]);
    } else {
      EXPECT_EQ(got[i], h(i, j));
    }
  }
}

TEST_P(PrimitiveSweep, DistributeRowsReplicatesVector) {
  const PrimCase c = GetParam();
  const std::vector<double> hv = random_vector(c.ncols, 321);
  DistVector<double> v(*grid, c.ncols, Align::Cols, c.layout.cols);
  v.load(hv);
  const DistMatrix<double> M = distribute_rows(v, c.nrows, c.layout.rows);
  const std::vector<double> got = M.to_host();
  for (std::size_t i = 0; i < c.nrows; ++i)
    for (std::size_t j = 0; j < c.ncols; ++j)
      EXPECT_EQ(got[i * c.ncols + j], hv[j]);
}

TEST_P(PrimitiveSweep, DistributeColsReplicatesVector) {
  const PrimCase c = GetParam();
  const std::vector<double> hv = random_vector(c.nrows, 322);
  DistVector<double> v(*grid, c.nrows, Align::Rows, c.layout.rows);
  v.load(hv);
  const DistMatrix<double> M = distribute_cols(v, c.ncols, c.layout.cols);
  const std::vector<double> got = M.to_host();
  for (std::size_t i = 0; i < c.nrows; ++i)
    for (std::size_t j = 0; j < c.ncols; ++j)
      EXPECT_EQ(got[i * c.ncols + j], hv[i]);
}

TEST_P(PrimitiveSweep, DistributeIsCommunicationFree) {
  const PrimCase c = GetParam();
  DistVector<double> v(*grid, c.ncols, Align::Cols, c.layout.cols);
  v.load(random_vector(c.ncols, 5));
  const std::uint64_t steps_before = cube->clock().stats().comm_steps;
  const DistMatrix<double> M = distribute_rows(v, c.nrows, c.layout.rows);
  EXPECT_EQ(cube->clock().stats().comm_steps, steps_before)
      << "distribute on an aligned vector must not communicate";
}

TEST_P(PrimitiveSweep, ReduceDistributeAdjointIdentity) {
  // <reduce_rows(A), v> == <A, distribute_rows(v)> — reduce with + and
  // distribute are adjoint linear maps.
  const PrimCase c = GetParam();
  const std::vector<double> hv = random_vector(c.ncols, 55);
  DistVector<double> v(*grid, c.ncols, Align::Cols, c.layout.cols);
  v.load(hv);
  // lhs: sum_i sum_j A[i][j] * v[j] via distribute + fold
  const DistMatrix<double> Vm = distribute_rows(v, c.nrows, c.layout.rows);
  double lhs = 0;
  {
    const std::vector<double> a = A->to_host(), b = Vm.to_host();
    for (std::size_t t = 0; t < a.size(); ++t) lhs += a[t] * b[t];
  }
  // rhs: <reduce_cols(A), v>
  const std::vector<double> red = reduce_cols(*A, Plus<double>{}).to_host();
  double rhs = 0;
  for (std::size_t j = 0; j < c.ncols; ++j) rhs += red[j] * hv[j];
  EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + std::abs(lhs)));
}

TEST_P(PrimitiveSweep, SwapRowsMatchesHost) {
  const PrimCase c = GetParam();
  if (c.nrows < 2) GTEST_SKIP();
  std::vector<double> want = host;
  const std::size_t i = 0, j = c.nrows - 1;
  for (std::size_t k = 0; k < c.ncols; ++k)
    std::swap(want[i * c.ncols + k], want[j * c.ncols + k]);
  swap_rows(*A, i, j);
  EXPECT_EQ(A->to_host(), want);
  swap_rows(*A, j, i);
  EXPECT_EQ(A->to_host(), host);
}

TEST_P(PrimitiveSweep, SwapColsMatchesHost) {
  const PrimCase c = GetParam();
  if (c.ncols < 2) GTEST_SKIP();
  std::vector<double> want = host;
  const std::size_t i = 0, j = c.ncols - 1;
  for (std::size_t k = 0; k < c.nrows; ++k)
    std::swap(want[k * c.ncols + i], want[k * c.ncols + j]);
  swap_cols(*A, i, j);
  EXPECT_EQ(A->to_host(), want);
}

TEST_P(PrimitiveSweep, MisalignedOperandsAreRejected) {
  const PrimCase c = GetParam();
  DistVector<double> wrong_align(*grid, c.ncols, Align::Rows, c.layout.rows);
  EXPECT_THROW(insert_row(*A, 0, wrong_align), ContractError);
  DistVector<double> wrong_len(*grid, c.ncols + 1, Align::Cols,
                               c.layout.cols);
  EXPECT_THROW(insert_row(*A, 0, wrong_len), ContractError);
  EXPECT_THROW((void)extract_row(*A, c.nrows), ContractError);
  EXPECT_THROW((void)extract_col(*A, c.ncols), ContractError);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrimitiveSweep,
    ::testing::Values(
        PrimCase{0, 0, 4, 5, MatrixLayout::blocked()},       // one processor
        PrimCase{1, 1, 4, 4, MatrixLayout::blocked()},
        PrimCase{2, 2, 16, 16, MatrixLayout::blocked()},
        PrimCase{2, 2, 13, 17, MatrixLayout::blocked()},     // non-divisible
        PrimCase{2, 2, 13, 17, MatrixLayout::cyclic()},
        PrimCase{3, 1, 9, 34, MatrixLayout::cyclic()},       // tall grid
        PrimCase{1, 3, 34, 9, MatrixLayout::blocked()},      // wide grid
        PrimCase{2, 3, 6, 40, MatrixLayout{Part::Cyclic, Part::Block}},
        PrimCase{3, 2, 3, 3, MatrixLayout::blocked()},       // fewer rows
                                                             // than procs
        PrimCase{2, 2, 1, 1, MatrixLayout::blocked()}));     // singleton

// ---------------------------------------------------------------------------
// Processor-time optimality: for m ≥ p·lg p, simulated reduce time must be
// within a constant factor of the serial fold time m·t_a (the paper's
// headline claim), under the unit cost model.
// ---------------------------------------------------------------------------

class OptimalitySweep : public ::testing::TestWithParam<int> {};

TEST_P(OptimalitySweep, ReduceIsProcessorTimeOptimal) {
  const int d = GetParam();
  Cube cube(d, CostParams::unit());
  Grid grid = Grid::square(cube);
  const std::size_t p = cube.procs();
  const std::size_t lgp = static_cast<std::size_t>(std::max(1, d));
  // m = 4 · p · lg p, square-ish.
  const std::size_t n = 1u << ((d + 3) / 2 + 1);
  const std::size_t m = n * n;
  ASSERT_GE(m, p * lgp);

  DistMatrix<double> A(grid, n, n);
  A.load(random_matrix(n, n, 3));
  cube.clock().reset();
  (void)reduce_rows(A, Plus<double>{});
  const double t_par = cube.clock().now_us();
  const double t_serial = static_cast<double>(m);  // m combines at t_a = 1
  // processor-time product within a constant factor of serial work:
  EXPECT_LE(static_cast<double>(p) * t_par, 16.0 * t_serial)
      << "d=" << d << " p·T=" << static_cast<double>(p) * t_par
      << " serial=" << t_serial;
  // and parallel time within a constant factor of m/p + lg p:
  EXPECT_LE(t_par, 16.0 * (static_cast<double>(m) / static_cast<double>(p) +
                           static_cast<double>(lgp)));
}

INSTANTIATE_TEST_SUITE_P(Dims, OptimalitySweep, ::testing::Values(1, 2, 3, 4,
                                                                  5, 6, 7, 8));

}  // namespace
}  // namespace vmp
