// BufferPool and the machine's pooled staging slots: block reuse, bucket
// rounding, statistics plumbing into SimClock, and the zero-allocation
// guarantee on a steady-state exchange hot loop.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comm/shift.hpp"
#include "core/primitives.hpp"
#include "embed/dist_matrix.hpp"
#include "embed/dist_vector.hpp"
#include "hypercube/buffer_pool.hpp"
#include "hypercube/machine.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

TEST(BufferPool, BucketRoundingIsPowerOfTwoWithFloor) {
  // Everything at or below the floor shares the 64-byte bucket.
  EXPECT_EQ(BufferPool::bucket_bytes(1), 64u);
  EXPECT_EQ(BufferPool::bucket_bytes(63), 64u);
  EXPECT_EQ(BufferPool::bucket_bytes(64), 64u);
  // Above the floor: the smallest enclosing power of two.
  EXPECT_EQ(BufferPool::bucket_bytes(65), 128u);
  EXPECT_EQ(BufferPool::bucket_bytes(128), 128u);
  EXPECT_EQ(BufferPool::bucket_bytes(129), 256u);
  EXPECT_EQ(BufferPool::bucket_bytes(1000), 1024u);
  EXPECT_EQ(BufferPool::bucket_bytes(1 << 20), 1u << 20);
  EXPECT_EQ(BufferPool::bucket_bytes((1 << 20) + 1), 1u << 21);
  // Zero-byte requests never touch the pool.
  EXPECT_EQ(BufferPool::bucket_bytes(0), 0u);
}

TEST(BufferPool, ReusesReleasedBlocksOfTheSameBucket) {
  BufferPool pool;
  void* first = nullptr;
  {
    const BufferPool::Block b = pool.acquire(100);
    first = b.data();
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(b.size(), 128u);  // bucket capacity, not the request
  }
  EXPECT_EQ(pool.free_blocks(), 1u);
  {
    // Any size in the same bucket recycles the identical storage.
    const BufferPool::Block b = pool.acquire(65);
    EXPECT_EQ(b.data(), first);
  }
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.heap_bytes(), 128u);
}

TEST(BufferPool, ZeroByteAcquireIsEmptyAndUncounted) {
  BufferPool pool;
  const BufferPool::Block b = pool.acquire(0);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPool, StatsFlowIntoTheOwningClock) {
  SimClock clock(CostParams::unit());
  BufferPool pool(&clock);
  { const auto a = pool.acquire(100); }  // miss: 128-byte bucket
  { const auto b = pool.acquire(100); }  // hit
  const SimStats& st = clock.stats();
  EXPECT_EQ(st.pool_misses, 1u);
  EXPECT_EQ(st.pool_hits, 1u);
  EXPECT_EQ(st.alloc_bytes, 128u);
}

TEST(BufferPool, TrimReleasesFreeBlocks) {
  BufferPool pool;
  { const auto a = pool.acquire(4096); }
  EXPECT_EQ(pool.free_blocks(), 1u);
  pool.trim();
  EXPECT_EQ(pool.free_blocks(), 0u);
  // The next acquire is a fresh miss.
  { const auto a = pool.acquire(4096); }
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(PooledStaging, SteadyStateExchangeLoopNeverTouchesTheHeap) {
  Cube cube(4, CostParams::cm2());
  DistBuffer<double> buf(cube, 64);
  cube.each_proc([&](proc_t q) {
    for (std::size_t t = 0; t < 64; ++t)
      buf.tile(q)[t] = static_cast<double>(q * 64 + t);
  });
  // Warm pass: every staging slot grows to its bucket capacity once.
  cube.exchange<double>(0, [&](proc_t q) { return std::span<const double>(buf.tile(q)); },
                        [&](proc_t, std::span<const double>) {});
  cube.clock().reset();
  for (int it = 0; it < 16; ++it)
    for (int d = 0; d < cube.dim(); ++d)
      cube.exchange<double>(
          d, [&](proc_t q) { return std::span<const double>(buf.tile(q)); },
          [&](proc_t, std::span<const double>) {});
  const SimStats& st = cube.clock().stats();
  EXPECT_EQ(st.pool_misses, 0u) << "steady-state exchange allocated";
  EXPECT_EQ(st.alloc_bytes, 0u);
  EXPECT_GT(st.pool_hits, 0u);
}

TEST(PooledStaging, SteadyStateGrayShiftLoopNeverTouchesTheHeap) {
  // The Gray shift stages tiles AND their lengths through one pooled slab
  // lease (no per-call DistBuffer copy, whose length vector would hit the
  // heap every shift): after one warm pass, a repeated-shift loop at any
  // mix of strides must be 100% pool hits.
  Cube cube(4, CostParams::cm2());
  const SubcubeSet sc = SubcubeSet::contiguous(0, 4);
  DistBuffer<double> buf(cube, 64);
  cube.each_proc([&](proc_t q) {
    for (std::size_t t = 0; t < 64; ++t)
      buf.tile(q)[t] = static_cast<double>(q * 64 + t);
  });
  shift_blocks(cube, buf, sc, 1, RingOrder::Gray);  // warm: lease bucket
  cube.clock().reset();
  for (int it = 0; it < 16; ++it) {
    shift_blocks(cube, buf, sc, 1, RingOrder::Gray);
    shift_blocks(cube, buf, sc, 5, RingOrder::Gray);
    shift_blocks(cube, buf, sc, -6, RingOrder::Gray);
  }
  const SimStats& st = cube.clock().stats();
  EXPECT_EQ(st.pool_misses, 0u) << "steady-state shift loop allocated";
  EXPECT_EQ(st.alloc_bytes, 0u);
  EXPECT_GT(st.pool_hits, 0u);
}

TEST(PooledStaging, SteadyStatePrimitiveLoopIsAllPoolHits) {
  Cube cube(4, CostParams::cm2());
  Grid grid = Grid::square(cube);
  const std::size_t n = 48;
  DistMatrix<double> A(grid, n, n);
  A.load(random_matrix(n, n, 7));
  // Warm pass: the collectives behind reduce/extract grow the slots once.
  (void)reduce(A, Axis::Row, Plus<double>{});
  (void)extract(A, Axis::Row, n / 2);
  cube.clock().reset();
  for (int it = 0; it < 8; ++it) {
    (void)reduce(A, Axis::Row, Plus<double>{});
    (void)extract(A, Axis::Row, n / 2);
  }
  const SimStats& st = cube.clock().stats();
  EXPECT_EQ(st.pool_misses, 0u)
      << "primitive hot loop allocated " << st.alloc_bytes << " bytes";
  EXPECT_GT(st.pool_hits, 0u);
}

TEST(PooledStaging, GrowingPayloadsMissOnceThenHitForever) {
  Cube cube(3, CostParams::cm2());
  // Payloads that double each round: each size class misses at most once
  // per slot; repeats of a size already seen are pure hits.
  std::vector<std::vector<double>> payload(cube.procs());
  std::uint64_t misses_after_first_sweep = 0;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t elems = 8; elems <= 512; elems *= 2) {
      for (proc_t q = 0; q < cube.procs(); ++q)
        payload[q].assign(elems, static_cast<double>(q));
      cube.exchange<double>(
          0, [&](proc_t q) { return std::span<const double>(payload[q]); },
          [&](proc_t, std::span<const double>) {});
    }
    if (round == 0) misses_after_first_sweep = cube.clock().stats().pool_misses;
  }
  EXPECT_GT(misses_after_first_sweep, 0u);
  EXPECT_EQ(cube.clock().stats().pool_misses, misses_after_first_sweep)
      << "a repeated size class must be served from the pooled slots";
}

}  // namespace
}  // namespace vmp
