// Integration tests: distributed simplex vs the serial reference — same
// pivots, same optima — plus known-answer, unbounded, infeasible and
// Phase-I problems.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/serial/simplex.hpp"
#include "algorithms/simplex.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

void expect_same_solution(const LpSolution& got, const LpSolution& want) {
  ASSERT_EQ(got.status, want.status);
  if (want.status != LpStatus::Optimal) return;
  EXPECT_EQ(got.iterations, want.iterations)
      << "distributed and serial must take identical pivot sequences";
  EXPECT_NEAR(got.objective, want.objective,
              1e-9 * (1 + std::abs(want.objective)));
  ASSERT_EQ(got.x.size(), want.x.size());
  for (std::size_t j = 0; j < want.x.size(); ++j)
    EXPECT_NEAR(got.x[j], want.x[j], 1e-8 * (1 + std::abs(want.x[j])));
}

void check_feasible(const LpProblem& lp, const LpSolution& sol,
                    double eps = 1e-7) {
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  for (std::size_t j = 0; j < lp.nvars; ++j) EXPECT_GE(sol.x[j], -eps);
  for (std::size_t i = 0; i < lp.ncons; ++i) {
    double dot = 0;
    for (std::size_t j = 0; j < lp.nvars; ++j)
      dot += lp.A[i * lp.nvars + j] * sol.x[j];
    EXPECT_LE(dot, lp.b[i] + eps * (1 + std::abs(lp.b[i]))) << "row " << i;
  }
  double obj = 0;
  for (std::size_t j = 0; j < lp.nvars; ++j) obj += lp.c[j] * sol.x[j];
  EXPECT_NEAR(obj, sol.objective, 1e-7 * (1 + std::abs(obj)));
}

TEST(SerialSimplex, TextbookKnownAnswer) {
  // max 3x + 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), z = 36.
  LpProblem lp;
  lp.nvars = 2;
  lp.ncons = 3;
  lp.c = {3, 5};
  lp.A = {1, 0, 0, 2, 3, 2};
  lp.b = {4, 12, 18};
  const LpSolution sol = serial::simplex_solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 36.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-9);
}

TEST(SerialSimplex, UnboundedDetected) {
  LpProblem lp;
  lp.nvars = 2;
  lp.ncons = 1;
  lp.c = {1, 1};
  lp.A = {1, -1};
  lp.b = {1};
  EXPECT_EQ(serial::simplex_solve(lp).status, LpStatus::Unbounded);
}

TEST(SerialSimplex, InfeasibleDetected) {
  // x ≤ -1 with x ≥ 0 is infeasible.
  LpProblem lp;
  lp.nvars = 1;
  lp.ncons = 1;
  lp.c = {1};
  lp.A = {1};
  lp.b = {-1};
  EXPECT_EQ(serial::simplex_solve(lp).status, LpStatus::Infeasible);
}

TEST(SerialSimplex, KleeMintyReachesTheKnownOptimum) {
  for (std::size_t d = 2; d <= 6; ++d) {
    const LpProblem lp = klee_minty(d);
    const LpSolution sol = serial::simplex_solve(lp);
    ASSERT_EQ(sol.status, LpStatus::Optimal) << "d=" << d;
    EXPECT_NEAR(sol.objective, std::pow(5.0, double(d)),
                1e-9 * std::pow(5.0, double(d)));
  }
}

TEST(SerialSimplex, Phase1LowerBoundsRespected) {
  const LpProblem lp = random_phase1_lp(6, 4, 2024);
  const LpSolution sol = serial::simplex_solve(lp);
  check_feasible(lp, sol);
  EXPECT_GT(sol.phase1_iterations, 0u);
}

struct DistCase {
  int gr, gc;
  std::size_t ncons, nvars;
  std::uint64_t seed;
  MatrixLayout layout;
};

class SimplexSweep : public ::testing::TestWithParam<DistCase> {};

TEST_P(SimplexSweep, MatchesSerialPivotForPivot) {
  const DistCase c = GetParam();
  Cube cube(c.gr + c.gc, CostParams::cm2());
  Grid grid(cube, c.gr, c.gc);
  const LpProblem lp = random_feasible_lp(c.ncons, c.nvars, c.seed);
  const LpSolution want = serial::simplex_solve(lp);
  const LpSolution got = simplex_solve(grid, lp, {}, c.layout);
  expect_same_solution(got, want);
  check_feasible(lp, got);
}

TEST_P(SimplexSweep, BlandRuleAgreesWithSerial) {
  const DistCase c = GetParam();
  Cube cube(c.gr + c.gc, CostParams::cm2());
  Grid grid(cube, c.gr, c.gc);
  const LpProblem lp = random_feasible_lp(c.ncons, c.nvars, c.seed + 7);
  SimplexOptions opts;
  opts.rule = PivotRule::Bland;
  const LpSolution want = serial::simplex_solve(lp, opts);
  const LpSolution got = simplex_solve(grid, lp, opts, c.layout);
  expect_same_solution(got, want);
}

TEST_P(SimplexSweep, Phase1ProblemsAgreeWithSerial) {
  const DistCase c = GetParam();
  Cube cube(c.gr + c.gc, CostParams::cm2());
  Grid grid(cube, c.gr, c.gc);
  const LpProblem lp = random_phase1_lp(c.ncons, c.nvars, c.seed + 13);
  const LpSolution want = serial::simplex_solve(lp);
  const LpSolution got = simplex_solve(grid, lp, {}, c.layout);
  expect_same_solution(got, want);
  if (want.status == LpStatus::Optimal) check_feasible(lp, got);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimplexSweep,
    ::testing::Values(
        DistCase{0, 0, 4, 3, 100, MatrixLayout::cyclic()},
        DistCase{1, 1, 5, 4, 101, MatrixLayout::cyclic()},
        DistCase{2, 2, 8, 6, 102, MatrixLayout::cyclic()},
        DistCase{2, 2, 8, 6, 103, MatrixLayout::blocked()},
        DistCase{3, 1, 10, 7, 104, MatrixLayout::cyclic()},
        DistCase{1, 3, 7, 10, 105, MatrixLayout::cyclic()},
        DistCase{2, 3, 12, 9, 106, MatrixLayout::cyclic()}));

TEST(DistSimplex, UnboundedDetected) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  LpProblem lp;
  lp.nvars = 2;
  lp.ncons = 1;
  lp.c = {1, 1};
  lp.A = {1, -1};
  lp.b = {1};
  EXPECT_EQ(simplex_solve(grid, lp).status, LpStatus::Unbounded);
}

TEST(DistSimplex, InfeasibleDetected) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  LpProblem lp;
  lp.nvars = 1;
  lp.ncons = 2;
  lp.c = {1};
  lp.A = {1, -1};
  lp.b = {1, -3};  // x ≤ 1 and x ≥ 3
  EXPECT_EQ(simplex_solve(grid, lp).status, LpStatus::Infeasible);
}

TEST(DistSimplex, KleeMintyMatchesSerial) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const LpProblem lp = klee_minty(5);
  const LpSolution want = serial::simplex_solve(lp);
  const LpSolution got = simplex_solve(grid, lp);
  expect_same_solution(got, want);
}

TEST(DistSimplex, SimulatedTimeScalesDownWithProcessors) {
  const LpProblem lp = random_feasible_lp(24, 20, 555);
  // Scaling claim is stated for the paper machine: pin the hypercube
  // preset so the CI mesh leg's routing contention can't flip it.
  Cube::Options opts;
  opts.topology = TopologyKind::Hypercube;
  double t_small = 0, t_large = 0;
  {
    Cube cube(0, CostParams::cm2(), opts);
    Grid grid(cube, 0, 0);
    const LpSolution s = simplex_solve(grid, lp);
    ASSERT_EQ(s.status, LpStatus::Optimal);
    t_small = cube.clock().now_us();
  }
  {
    Cube cube(6, CostParams::cm2(), opts);
    Grid grid(cube, 3, 3);
    const LpSolution s = simplex_solve(grid, lp);
    ASSERT_EQ(s.status, LpStatus::Optimal);
    t_large = cube.clock().now_us();
  }
  EXPECT_LT(t_large, t_small) << "64 processors must beat 1";
}

}  // namespace
}  // namespace vmp
