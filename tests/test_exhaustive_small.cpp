// Exhaustive small-space verification: for EVERY cube dimension ≤ 4,
// EVERY grid split, small matrix extents and both layouts, check all four
// primitives and both matvec forms against host references.  Thousands of
// configurations — the long tail of off-by-one embeddings lives here.
#include <gtest/gtest.h>

#include <memory>

#include "algorithms/matvec.hpp"
#include "core/primitives.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

struct Config {
  int gr, gc;
  std::size_t nr, nc;
  MatrixLayout layout;
};

template <class Fn>
void for_all_configs(Fn fn) {
  const Part parts[] = {Part::Block, Part::Cyclic};
  for (int d = 0; d <= 4; ++d) {
    for (int gr = 0; gr <= d; ++gr) {
      for (std::size_t nr : {1ul, 2ul, 3ul, 5ul}) {
        for (std::size_t nc : {1ul, 3ul, 4ul, 7ul}) {
          for (Part pr : parts) {
            for (Part pc : parts) {
              fn(Config{gr, d - gr, nr, nc, MatrixLayout{pr, pc}});
            }
          }
        }
      }
    }
  }
}

TEST(ExhaustiveSmall, ReduceBothAxes) {
  for_all_configs([&](const Config& c) {
    Cube cube(c.gr + c.gc, CostParams::unit());
    Grid grid(cube, c.gr, c.gc);
    const std::vector<double> host = random_matrix(c.nr, c.nc, 7 * c.nr + c.nc);
    DistMatrix<double> A(grid, c.nr, c.nc, c.layout);
    A.load(host);
    const std::vector<double> rows =
        reduce_rows(A, Plus<double>{}).to_host();
    const std::vector<double> cols =
        reduce_cols(A, Plus<double>{}).to_host();
    for (std::size_t i = 0; i < c.nr; ++i) {
      double w = 0;
      for (std::size_t j = 0; j < c.nc; ++j) w += host[i * c.nc + j];
      ASSERT_NEAR(rows[i], w, 1e-12) << "d=" << c.gr + c.gc << " gr=" << c.gr
                                     << " " << c.nr << "x" << c.nc;
    }
    for (std::size_t j = 0; j < c.nc; ++j) {
      double w = 0;
      for (std::size_t i = 0; i < c.nr; ++i) w += host[i * c.nc + j];
      ASSERT_NEAR(cols[j], w, 1e-12);
    }
  });
}

TEST(ExhaustiveSmall, ExtractInsertEveryLine) {
  for_all_configs([&](const Config& c) {
    Cube cube(c.gr + c.gc, CostParams::unit());
    Grid grid(cube, c.gr, c.gc);
    const std::vector<double> host = random_matrix(c.nr, c.nc, 9 * c.nr + c.nc);
    DistMatrix<double> A(grid, c.nr, c.nc, c.layout);
    A.load(host);
    for (std::size_t i = 0; i < c.nr; ++i) {
      const std::vector<double> row = extract_row(A, i).to_host();
      for (std::size_t j = 0; j < c.nc; ++j)
        ASSERT_EQ(row[j], host[i * c.nc + j])
            << "d=" << c.gr + c.gc << " gr=" << c.gr << " (" << i << ")";
    }
    for (std::size_t j = 0; j < c.nc; ++j) {
      const std::vector<double> col = extract_col(A, j).to_host();
      for (std::size_t i = 0; i < c.nr; ++i)
        ASSERT_EQ(col[i], host[i * c.nc + j]);
    }
    // Round-trip insert of fresh content into every row.
    for (std::size_t i = 0; i < c.nr; ++i) {
      const std::vector<double> fresh = random_vector(c.nc, i + 77);
      DistVector<double> v(grid, c.nc, Align::Cols, c.layout.cols);
      v.load(fresh);
      insert_row(A, i, v);
      ASSERT_EQ(extract_row(A, i).to_host(), fresh);
    }
  });
}

TEST(ExhaustiveSmall, DistributeBothAxes) {
  for_all_configs([&](const Config& c) {
    Cube cube(c.gr + c.gc, CostParams::unit());
    Grid grid(cube, c.gr, c.gc);
    const std::vector<double> hv = random_vector(c.nc, 11 * c.nr + c.nc);
    DistVector<double> v(grid, c.nc, Align::Cols, c.layout.cols);
    v.load(hv);
    const std::vector<double> got =
        distribute_rows(v, c.nr, c.layout.rows).to_host();
    for (std::size_t i = 0; i < c.nr; ++i)
      for (std::size_t j = 0; j < c.nc; ++j)
        ASSERT_EQ(got[i * c.nc + j], hv[j])
            << "d=" << c.gr + c.gc << " gr=" << c.gr;

    const std::vector<double> hw = random_vector(c.nr, 13 * c.nr + c.nc);
    DistVector<double> w(grid, c.nr, Align::Rows, c.layout.rows);
    w.load(hw);
    const std::vector<double> got2 =
        distribute_cols(w, c.nc, c.layout.cols).to_host();
    for (std::size_t i = 0; i < c.nr; ++i)
      for (std::size_t j = 0; j < c.nc; ++j)
        ASSERT_EQ(got2[i * c.nc + j], hw[i]);
  });
}

TEST(ExhaustiveSmall, MatvecBothForms) {
  for_all_configs([&](const Config& c) {
    Cube cube(c.gr + c.gc, CostParams::unit());
    Grid grid(cube, c.gr, c.gc);
    const std::vector<double> ha = random_matrix(c.nr, c.nc, 15 * c.nr + c.nc);
    const std::vector<double> hx = random_vector(c.nc, 17 * c.nr + c.nc);
    DistMatrix<double> A(grid, c.nr, c.nc, c.layout);
    A.load(ha);
    DistVector<double> x(grid, c.nc, Align::Cols, c.layout.cols);
    x.load(hx);
    const std::vector<double> y1 = matvec(A, x).to_host();
    const std::vector<double> y2 = matvec_fused(A, x).to_host();
    for (std::size_t i = 0; i < c.nr; ++i) {
      double w = 0;
      for (std::size_t j = 0; j < c.nc; ++j) w += ha[i * c.nc + j] * hx[j];
      ASSERT_NEAR(y1[i], w, 1e-12 * (1 + std::abs(w)))
          << "d=" << c.gr + c.gc << " gr=" << c.gr;
      ASSERT_EQ(y1[i], y2[i]);
    }
  });
}

}  // namespace
}  // namespace vmp
