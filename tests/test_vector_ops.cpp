// Unit tests: distributed vector/matrix elementwise operations, folds,
// located reductions and the rank-1 update.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/elementwise.hpp"
#include "core/vector_ops.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

class VecOps : public ::testing::TestWithParam<std::tuple<Align, Part>> {
 protected:
  void SetUp() override {
    auto [align, part] = GetParam();
    if (align == Align::Linear && part == Part::Cyclic) GTEST_SKIP();
    cube = std::make_unique<Cube>(4, CostParams::cm2());
    grid = std::make_unique<Grid>(*cube, 2, 2);
    hv = random_vector(n, 17);
    v = std::make_unique<DistVector<double>>(*grid, n, align, part);
    v->load(hv);
  }

  static constexpr std::size_t n = 37;
  std::unique_ptr<Cube> cube;
  std::unique_ptr<Grid> grid;
  std::vector<double> hv;
  std::unique_ptr<DistVector<double>> v;
};

TEST_P(VecOps, ApplyScaleFill) {
  vec_apply(*v, [](double x) { return 2 * x + 1; });
  vec_scale(*v, 0.5);
  vec_fill_range(*v, 3, 7, -9.0);
  const std::vector<double> got = v->to_host();
  for (std::size_t g = 0; g < n; ++g) {
    const double want = (g >= 3 && g < 7) ? -9.0 : 0.5 * (2 * hv[g] + 1);
    EXPECT_DOUBLE_EQ(got[g], want);
  }
  EXPECT_TRUE(v->replicas_consistent());
}

TEST_P(VecOps, ApplyIndexedSeesGlobalIndices) {
  vec_apply_indexed(*v, [](double, std::size_t g) {
    return static_cast<double>(g);
  });
  const std::vector<double> got = v->to_host();
  for (std::size_t g = 0; g < n; ++g) EXPECT_EQ(got[g], double(g));
}

TEST_P(VecOps, ZipAxpyDot) {
  auto [align, part] = GetParam();
  const std::vector<double> hw = random_vector(n, 18);
  DistVector<double> w(*grid, n, align, part);
  w.load(hw);
  vec_axpy(*v, 2.0, w);
  const std::vector<double> got = v->to_host();
  for (std::size_t g = 0; g < n; ++g)
    EXPECT_DOUBLE_EQ(got[g], hv[g] + 2.0 * hw[g]);
  const double d = dot(*v, w);
  double want = 0;
  for (std::size_t g = 0; g < n; ++g) want += got[g] * hw[g];
  EXPECT_NEAR(d, want, 1e-12 * (1 + std::abs(want)));
}

TEST_P(VecOps, FoldSumMinMax) {
  double wsum = 0, wmin = 1e300, wmax = -1e300;
  for (double x : hv) {
    wsum += x;
    wmin = std::min(wmin, x);
    wmax = std::max(wmax, x);
  }
  EXPECT_NEAR(vec_fold(*v, Plus<double>{}), wsum, 1e-12);
  EXPECT_EQ(vec_fold(*v, Min<double>{}), wmin);
  EXPECT_EQ(vec_fold(*v, Max<double>{}), wmax);
}

TEST_P(VecOps, ArgminArgmaxWithExclusions) {
  const ValueIndex<double> mn =
      vec_argmin_key(*v, [](double x, std::size_t) { return x; });
  const ValueIndex<double> mx =
      vec_argmax_key(*v, [](double x, std::size_t) { return x; });
  std::size_t wmin = 0, wmax = 0;
  for (std::size_t g = 1; g < n; ++g) {
    if (hv[g] < hv[wmin]) wmin = g;
    if (hv[g] > hv[wmax]) wmax = g;
  }
  EXPECT_EQ(mn.index, static_cast<std::int64_t>(wmin));
  EXPECT_EQ(mx.index, static_cast<std::int64_t>(wmax));
  EXPECT_EQ(mn.value, hv[wmin]);
  EXPECT_EQ(mx.value, hv[wmax]);

  // Exclude everything: index must come back -1.
  constexpr double inf = std::numeric_limits<double>::infinity();
  const ValueIndex<double> none =
      vec_argmin_key(*v, [](double, std::size_t) { return inf; });
  EXPECT_EQ(none.index, -1);
}

TEST_P(VecOps, ArgminTieBreaksToSmallestIndex) {
  vec_apply(*v, [](double) { return 1.0; });
  const ValueIndex<double> mn =
      vec_argmin_key(*v, [](double x, std::size_t) { return x; });
  EXPECT_EQ(mn.index, 0);
  const ValueIndex<double> mx =
      vec_argmax_key(*v, [](double x, std::size_t) { return x; });
  EXPECT_EQ(mx.index, 0);
}

TEST_P(VecOps, FetchAndStoreChargeTime) {
  const double t0 = cube->clock().now_us();
  EXPECT_EQ(vec_fetch(*v, 5), hv[5]);
  EXPECT_GT(cube->clock().now_us(), t0);
  vec_store(*v, 5, 42.0);
  EXPECT_EQ(vec_fetch(*v, 5), 42.0);
  EXPECT_TRUE(v->replicas_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VecOps,
    ::testing::Combine(::testing::Values(Align::Linear, Align::Cols,
                                         Align::Rows),
                       ::testing::Values(Part::Block, Part::Cyclic)));

// ---------------------------------------------------------------------------
// Matrix elementwise + rank-1 update.
// ---------------------------------------------------------------------------

class MatOps : public ::testing::TestWithParam<MatrixLayout> {
 protected:
  void SetUp() override {
    cube = std::make_unique<Cube>(4, CostParams::cm2());
    grid = std::make_unique<Grid>(*cube, 2, 2);
    ha = random_matrix(nr, nc, 21);
    hb = random_matrix(nr, nc, 22);
    A = std::make_unique<DistMatrix<double>>(*grid, nr, nc, GetParam());
    B = std::make_unique<DistMatrix<double>>(*grid, nr, nc, GetParam());
    A->load(ha);
    B->load(hb);
  }

  static constexpr std::size_t nr = 13, nc = 19;
  std::unique_ptr<Cube> cube;
  std::unique_ptr<Grid> grid;
  std::vector<double> ha, hb;
  std::unique_ptr<DistMatrix<double>> A, B;
};

TEST_P(MatOps, ApplyZipAxpyHadamard) {
  mat_apply(*A, [](double x) { return x + 1; });
  mat_zip(*A, *B, [](double a, double b) { return a - b; });
  const std::vector<double> got = A->to_host();
  for (std::size_t t = 0; t < got.size(); ++t)
    EXPECT_DOUBLE_EQ(got[t], ha[t] + 1 - hb[t]);

  const DistMatrix<double> H = hadamard(*A, *B);
  const std::vector<double> hh = H.to_host();
  for (std::size_t t = 0; t < hh.size(); ++t)
    EXPECT_DOUBLE_EQ(hh[t], got[t] * hb[t]);

  mat_axpy(*A, 3.0, *B);
  const std::vector<double> ax = A->to_host();
  for (std::size_t t = 0; t < ax.size(); ++t)
    EXPECT_DOUBLE_EQ(ax[t], got[t] + 3.0 * hb[t]);
}

TEST_P(MatOps, ApplyIndexedSeesGlobalIndices) {
  mat_apply_indexed(*A, [](double, std::size_t i, std::size_t j) {
    return static_cast<double>(i * 1000 + j);
  });
  const std::vector<double> got = A->to_host();
  for (std::size_t i = 0; i < nr; ++i)
    for (std::size_t j = 0; j < nc; ++j)
      EXPECT_EQ(got[i * nc + j], double(i * 1000 + j));
}

TEST_P(MatOps, Rank1UpdateMatchesHostAndIsLocal) {
  const std::vector<double> hc = random_vector(nr, 31);
  const std::vector<double> hr = random_vector(nc, 32);
  DistVector<double> c(*grid, nr, Align::Rows, GetParam().rows);
  DistVector<double> r(*grid, nc, Align::Cols, GetParam().cols);
  c.load(hc);
  r.load(hr);
  const std::uint64_t steps = cube->clock().stats().comm_steps;
  rank1_update(*A, -2.0, c, r);
  EXPECT_EQ(cube->clock().stats().comm_steps, steps)
      << "rank-1 update must be communication-free";
  const std::vector<double> got = A->to_host();
  for (std::size_t i = 0; i < nr; ++i)
    for (std::size_t j = 0; j < nc; ++j)
      EXPECT_DOUBLE_EQ(got[i * nc + j], ha[i * nc + j] + -2.0 * hc[i] * hr[j]);
}

TEST_P(MatOps, MatFoldAndFetch) {
  double wsum = 0;
  for (double x : ha) wsum += x;
  EXPECT_NEAR(mat_fold(*A, Plus<double>{}), wsum, 1e-11);
  EXPECT_EQ(mat_fetch(*A, 3, 4), ha[3 * nc + 4]);
}

TEST_P(MatOps, MisalignedZipRejected) {
  DistMatrix<double> C(*grid, nr, nc + 1, GetParam());
  EXPECT_THROW(mat_zip(*A, C, [](double a, double) { return a; }),
               ContractError);
}

INSTANTIATE_TEST_SUITE_P(Layouts, MatOps,
                         ::testing::Values(MatrixLayout::blocked(),
                                           MatrixLayout::cyclic(),
                                           MatrixLayout{Part::Block,
                                                        Part::Cyclic}));

}  // namespace
}  // namespace vmp
