// Property-based randomized sweep (satellite of the fault-injection PR):
// all eight primitives checked against straight-line host references over
// random grid splits (gr + gc = d for d = 1..8), ragged matrix extents,
// both machine presets and both layouts.  Every draw derives from
// global_seed(), so any failure is reproducible with the one-line recipe
// in its message: export the printed VMP_SEED and rerun the test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/gauss.hpp"
#include "algorithms/matvec.hpp"
#include "algorithms/simplex.hpp"
#include "algorithms/spmv.hpp"
#include "comm/dist_buffer.hpp"
#include "core/kernels.hpp"
#include "core/primitives.hpp"
#include "core/sparse_primitives.hpp"
#include "embed/sparse_realign.hpp"
#include "core/vector_ops.hpp"
#include "fault/fault.hpp"
#include "util/rng.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

const std::uint64_t kBaseSeed = announce_seed("test_properties_random");

struct TrialConfig {
  int d, gr, gc;
  std::size_t nrows, ncols;
  bool cyclic;
  bool ipsc;
  std::uint64_t data_seed;

  [[nodiscard]] std::string reproducer(int trial) const {
    return "reproduce: VMP_SEED=" + std::to_string(kBaseSeed) +
           " ./test_properties_random  (trial " + std::to_string(trial) +
           ": d=" + std::to_string(d) + " gr=" + std::to_string(gr) +
           " gc=" + std::to_string(gc) + " n=" + std::to_string(nrows) + "x" +
           std::to_string(ncols) + (cyclic ? " cyclic" : " blocked") +
           (ipsc ? " ipsc" : " cm2") + ")";
  }
};

/// Draw one trial configuration; all randomness flows from (base seed,
/// trial), nothing else.
[[nodiscard]] TrialConfig draw(int trial) {
  SplitMix64 rng(kBaseSeed + static_cast<std::uint64_t>(trial) * 0x9e37ull);
  TrialConfig c;
  c.d = 1 + static_cast<int>(rng.below(8));  // 1..8 → 2..256 processors
  c.gr = static_cast<int>(rng.below(static_cast<std::uint64_t>(c.d) + 1));
  c.gc = c.d - c.gr;
  // Ragged on purpose: extents not multiples of the grid, down to 1.
  c.nrows = 1 + rng.below(48);
  c.ncols = 1 + rng.below(48);
  c.cyclic = rng.below(2) == 0;
  c.ipsc = rng.below(2) == 0;
  c.data_seed = rng.next();
  return c;
}

class RandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomSweep, AllPrimitivesMatchHostReferences) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));

  Cube cube(c.d, c.ipsc ? CostParams::ipsc() : CostParams::cm2());
  Grid grid(cube, c.gr, c.gc);
  const std::vector<double> host =
      random_matrix(c.nrows, c.ncols, static_cast<unsigned>(c.data_seed));
  const auto h = [&](std::size_t i, std::size_t j) {
    return host[i * c.ncols + j];
  };
  DistMatrix<double> A(grid, c.nrows, c.ncols,
                       c.cyclic ? MatrixLayout::cyclic()
                                : MatrixLayout::blocked());
  A.load(host);
  EXPECT_EQ(A.to_host(), host) << "load/to_host round trip";

  SplitMix64 rng(c.data_seed ^ 0xfeedULL);
  const std::size_t pick_i = rng.below(c.nrows);
  const std::size_t pick_j = rng.below(c.ncols);

  // 1+2: reduce_rows / reduce_cols (sum within tolerance, max exact).
  {
    const std::vector<double> got = reduce_rows(A, Plus<double>{}).to_host();
    ASSERT_EQ(got.size(), c.nrows);
    for (std::size_t i = 0; i < c.nrows; ++i) {
      double want = 0;
      for (std::size_t j = 0; j < c.ncols; ++j) want += h(i, j);
      EXPECT_NEAR(got[i], want, 1e-12 * static_cast<double>(c.ncols + 1))
          << "reduce_rows row " << i;
    }
    const std::vector<double> gmax = reduce_rows(A, Max<double>{}).to_host();
    for (std::size_t i = 0; i < c.nrows; ++i) {
      double want = std::numeric_limits<double>::lowest();
      for (std::size_t j = 0; j < c.ncols; ++j) want = std::max(want, h(i, j));
      EXPECT_EQ(gmax[i], want) << "reduce_rows(max) row " << i;
    }
  }
  {
    const std::vector<double> got = reduce_cols(A, Plus<double>{}).to_host();
    ASSERT_EQ(got.size(), c.ncols);
    for (std::size_t j = 0; j < c.ncols; ++j) {
      double want = 0;
      for (std::size_t i = 0; i < c.nrows; ++i) want += h(i, j);
      EXPECT_NEAR(got[j], want, 1e-12 * static_cast<double>(c.nrows + 1))
          << "reduce_cols col " << j;
    }
  }

  // 3+4: extract_row / extract_col (pure data motion: exact).
  {
    const DistVector<double> row = extract_row(A, pick_i);
    EXPECT_EQ(row.align(), Align::Cols);
    EXPECT_TRUE(row.replicas_consistent());
    const std::vector<double> got = row.to_host();
    ASSERT_EQ(got.size(), c.ncols);
    for (std::size_t j = 0; j < c.ncols; ++j)
      EXPECT_EQ(got[j], h(pick_i, j)) << "extract_row col " << j;
  }
  {
    const DistVector<double> col = extract_col(A, pick_j);
    EXPECT_EQ(col.align(), Align::Rows);
    EXPECT_TRUE(col.replicas_consistent());
    const std::vector<double> got = col.to_host();
    ASSERT_EQ(got.size(), c.nrows);
    for (std::size_t i = 0; i < c.nrows; ++i)
      EXPECT_EQ(got[i], h(i, pick_j)) << "extract_col row " << i;
  }

  // 5+6: distribute_rows / distribute_cols (replication: exact).
  const std::vector<double> vc_host =
      random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
  const std::vector<double> vr_host =
      random_vector(c.nrows, static_cast<unsigned>(c.data_seed >> 16));
  // insert_row/col require the vector's partition kind to match the
  // matrix axis it lands on.
  const Part part = c.cyclic ? Part::Cyclic : Part::Block;
  DistVector<double> vc(grid, c.ncols, Align::Cols, part);
  DistVector<double> vr(grid, c.nrows, Align::Rows, part);
  vc.load(vc_host);
  vr.load(vr_host);
  {
    const std::vector<double> got = distribute_rows(vc, c.nrows).to_host();
    ASSERT_EQ(got.size(), c.nrows * c.ncols);
    for (std::size_t i = 0; i < c.nrows; ++i)
      for (std::size_t j = 0; j < c.ncols; ++j)
        EXPECT_EQ(got[i * c.ncols + j], vc_host[j])
            << "distribute_rows (" << i << "," << j << ")";
  }
  {
    const std::vector<double> got = distribute_cols(vr, c.ncols).to_host();
    ASSERT_EQ(got.size(), c.nrows * c.ncols);
    for (std::size_t i = 0; i < c.nrows; ++i)
      for (std::size_t j = 0; j < c.ncols; ++j)
        EXPECT_EQ(got[i * c.ncols + j], vr_host[i])
            << "distribute_cols (" << i << "," << j << ")";
  }

  // 7+8: insert_row / insert_col (exact, and only the target line moves).
  {
    std::vector<double> want = host;
    for (std::size_t j = 0; j < c.ncols; ++j)
      want[pick_i * c.ncols + j] = vc_host[j];
    insert_row(A, pick_i, vc);
    EXPECT_EQ(A.to_host(), want) << "insert_row";
    for (std::size_t i = 0; i < c.nrows; ++i)
      want[i * c.ncols + pick_j] = vr_host[i];
    insert_col(A, pick_j, vr);
    EXPECT_EQ(A.to_host(), want) << "insert_col";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomSweep, ::testing::Range(0, 24));

// The axis-generic wrappers (extract/insert/reduce/distribute over
// vmp::Axis) are thin delegations to the named forms: same results, same
// simulated charges, same event traces — checked here bit-for-bit by
// running the named spelling on one machine and the generic spelling on an
// identical twin.
TEST_P(RandomSweep, AxisWrappersMatchNamedFormsExactly) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));

  const std::vector<double> host =
      random_matrix(c.nrows, c.ncols, static_cast<unsigned>(c.data_seed));
  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const Part part = c.cyclic ? Part::Cyclic : Part::Block;
  const CostParams costs = c.ipsc ? CostParams::ipsc() : CostParams::cm2();

  Cube cn(c.d, costs), cg(c.d, costs);  // named / generic twins
  Grid gn(cn, c.gr, c.gc), gg(cg, c.gr, c.gc);
  cn.clock().tracer().set_recording(true);
  cg.clock().tracer().set_recording(true);

  DistMatrix<double> An(gn, c.nrows, c.ncols, layout);
  DistMatrix<double> Ag(gg, c.nrows, c.ncols, layout);
  An.load(host);
  Ag.load(host);
  const std::vector<double> vc_host =
      random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
  const std::vector<double> vr_host =
      random_vector(c.nrows, static_cast<unsigned>(c.data_seed >> 16));
  DistVector<double> vcn(gn, c.ncols, Align::Cols, part);
  DistVector<double> vcg(gg, c.ncols, Align::Cols, part);
  DistVector<double> vrn(gn, c.nrows, Align::Rows, part);
  DistVector<double> vrg(gg, c.nrows, Align::Rows, part);
  vcn.load(vc_host);
  vcg.load(vc_host);
  vrn.load(vr_host);
  vrg.load(vr_host);

  SplitMix64 rng(c.data_seed ^ 0xfeedULL);
  const std::size_t pick_i = rng.below(c.nrows);
  const std::size_t pick_j = rng.below(c.ncols);
  const std::size_t lo = rng.below(c.nrows);

  EXPECT_EQ(extract_row(An, pick_i).to_host(),
            extract(Ag, Axis::Row, pick_i).to_host());
  EXPECT_EQ(extract_col(An, pick_j).to_host(),
            extract(Ag, Axis::Col, pick_j).to_host());
  EXPECT_EQ(reduce_rows(An, Plus<double>{}).to_host(),
            reduce(Ag, Axis::Row, Plus<double>{}).to_host());
  EXPECT_EQ(reduce_cols(An, Max<double>{}).to_host(),
            reduce(Ag, Axis::Col, Max<double>{}).to_host());
  EXPECT_EQ(distribute_rows(vcn, c.nrows, part).to_host(),
            distribute(vcg, Axis::Row, c.nrows, part).to_host());
  EXPECT_EQ(distribute_cols(vrn, c.ncols, part).to_host(),
            distribute(vrg, Axis::Col, c.ncols, part).to_host());
  insert_row(An, pick_i, vcn);
  insert(Ag, Axis::Row, pick_i, vcg);
  EXPECT_EQ(An.to_host(), Ag.to_host()) << "insert row";
  insert_col(An, pick_j, vrn);
  insert(Ag, Axis::Col, pick_j, vrg);
  EXPECT_EQ(An.to_host(), Ag.to_host()) << "insert col";
  insert_col_range(An, pick_j, vrn, lo, c.nrows);
  insert_range(Ag, Axis::Col, pick_j, vrg, lo, c.nrows);
  EXPECT_EQ(An.to_host(), Ag.to_host()) << "insert col range";

  // Identical simulated time and identical event traces, charge for charge.
  EXPECT_EQ(cn.clock().now_us(), cg.clock().now_us());
  EXPECT_EQ(cn.clock().tracer().paths(), cg.clock().tracer().paths());
  EXPECT_TRUE(cn.clock().tracer().events() == cg.clock().tracer().events())
      << "wrapper and named-form event traces diverge";
}

// fused_matvec / fused_vecmat drop the intermediate matrices but keep the
// identical communication sequence and local combine order, so results are
// bit-identical to the primitive composition — with and without a fault
// plan — at the same or lower simulated cost.
TEST_P(RandomSweep, FusedMatvecBitIdenticalToComposed) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));
  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const CostParams costs = c.ipsc ? CostParams::ipsc() : CostParams::cm2();
  const bool faulty = trial % 2 == 1;

  // Twin machines: fault rounds must line up call for call, so composed
  // and fused run on separate cubes driven by the same plan.
  Cube c0(c.d, costs), c1(c.d, costs);
  if (faulty) {
    c0.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
    c1.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
  }
  Grid g0(c0, c.gr, c.gc), g1(c1, c.gr, c.gc);
  const std::vector<double> host =
      random_matrix(c.nrows, c.ncols, static_cast<unsigned>(c.data_seed));
  DistMatrix<double> A0(g0, c.nrows, c.ncols, layout);
  DistMatrix<double> A1(g1, c.nrows, c.ncols, layout);
  A0.load(host);
  A1.load(host);

  {
    const std::vector<double> xh =
        random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
    DistVector<double> x0(g0, c.ncols, Align::Cols, layout.cols);
    DistVector<double> x1(g1, c.ncols, Align::Cols, layout.cols);
    x0.load(xh);
    x1.load(xh);
    c0.clock().reset();
    c1.clock().reset();
    const std::vector<double> composed = matvec(A0, x0).to_host();
    const std::vector<double> fused = fused_matvec(A1, x1).to_host();
    EXPECT_EQ(composed, fused) << "matvec fused vs composed";
    // Same or lower simulated cost; in particular the paper's optimality
    // regime m > p·lg p must never favor the composition.
    EXPECT_LE(c1.clock().now_us(), c0.clock().now_us() + 1e-9);
  }
  {
    const std::vector<double> xh =
        random_vector(c.nrows, static_cast<unsigned>(c.data_seed >> 16));
    DistVector<double> x0(g0, c.nrows, Align::Rows, layout.rows);
    DistVector<double> x1(g1, c.nrows, Align::Rows, layout.rows);
    x0.load(xh);
    x1.load(xh);
    c0.clock().reset();
    c1.clock().reset();
    const std::vector<double> composed = vecmat(x0, A0).to_host();
    const std::vector<double> fused = fused_vecmat(x1, A1).to_host();
    EXPECT_EQ(composed, fused) << "vecmat fused vs composed";
    EXPECT_LE(c1.clock().now_us(), c0.clock().now_us() + 1e-9);
  }
}

// Slab-storage invariance (tentpole check of the contiguous-arena
// refactor): the arena layout behind every DistBuffer is a host-side
// concern only.  A machine whose buffer pool is cold and a twin whose
// pool has been churned — arenas acquired, grown through reallocation,
// destroyed and recycled — must produce bit-identical results, identical
// simulated clocks, identical traffic counters and charge-for-charge
// identical event traces for the same workload, with and without a fault
// plan.  Only the host allocation counters (pool hits/misses, heap bytes,
// slab allocs/bytes) may differ between the twins.
TEST_P(RandomSweep, SlabChurnInvisibleToSimulatedMachine) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));
  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const CostParams costs = c.ipsc ? CostParams::ipsc() : CostParams::cm2();
  const bool faulty = trial % 2 == 1;

  Cube c0(c.d, costs), c1(c.d, costs);  // cold / churned twins
  if (faulty) {
    c0.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
    c1.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
  }
  // Churn only the second machine's pool: acquire arenas of assorted
  // sizes, force stride growth (reallocation into larger slabs), then
  // drop everything so later acquisitions are recycled free-list blocks
  // with histories the cold twin never sees.
  {
    DistBuffer<double> big(c1, 300);
    DistBuffer<double> grower(c1);
    for (int s = 0; s < 150; ++s) grower.push_back(0, 1.0 * s);
    DistBuffer<double> small(c1, 5);
  }
  c0.clock().tracer().set_recording(true);
  c1.clock().tracer().set_recording(true);

  Grid g0(c0, c.gr, c.gc), g1(c1, c.gr, c.gc);
  const std::vector<double> host =
      random_matrix(c.nrows, c.ncols, static_cast<unsigned>(c.data_seed));
  DistMatrix<double> A0(g0, c.nrows, c.ncols, layout);
  DistMatrix<double> A1(g1, c.nrows, c.ncols, layout);
  A0.load(host);
  A1.load(host);
  const std::vector<double> xh =
      random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
  DistVector<double> x0(g0, c.ncols, Align::Cols, layout.cols);
  DistVector<double> x1(g1, c.ncols, Align::Cols, layout.cols);
  x0.load(xh);
  x1.load(xh);

  SplitMix64 rng(c.data_seed ^ 0xabcdULL);
  const std::size_t pick_i = rng.below(c.nrows);
  const std::size_t pick_j = rng.below(c.ncols);

  // A workload mixing all four primitive families plus the fused pipeline:
  // data motion, reduction, replication and compute.
  EXPECT_EQ(extract_row(A0, pick_i).to_host(),
            extract_row(A1, pick_i).to_host());
  EXPECT_EQ(extract_col(A0, pick_j).to_host(),
            extract_col(A1, pick_j).to_host());
  EXPECT_EQ(reduce_rows(A0, Plus<double>{}).to_host(),
            reduce_rows(A1, Plus<double>{}).to_host());
  EXPECT_EQ(reduce_cols(A0, Max<double>{}).to_host(),
            reduce_cols(A1, Max<double>{}).to_host());
  EXPECT_EQ(distribute_rows(x0, c.nrows).to_host(),
            distribute_rows(x1, c.nrows).to_host());
  insert_row(A0, pick_i, x0);
  insert_row(A1, pick_i, x1);
  EXPECT_EQ(A0.to_host(), A1.to_host()) << "insert_row";
  EXPECT_EQ(fused_matvec(A0, x0).to_host(), fused_matvec(A1, x1).to_host())
      << "fused matvec";

  // Identical simulated time, charge for charge.
  EXPECT_EQ(c0.clock().now_us(), c1.clock().now_us());
  EXPECT_EQ(c0.clock().tracer().paths(), c1.clock().tracer().paths());
  EXPECT_TRUE(c0.clock().tracer().events() == c1.clock().tracer().events())
      << "cold and churned event traces diverge";

  // Identical traffic/work/fault counters once the host-side allocation
  // counters (the only fields churn is allowed to move) are masked out.
  SimStats s0 = c0.clock().stats(), s1 = c1.clock().stats();
  EXPECT_NE(s0.pool_hits + s0.pool_misses, s1.pool_hits + s1.pool_misses)
      << "churn must actually have perturbed the pool";
  s0.alloc_bytes = s1.alloc_bytes = 0;
  s0.pool_hits = s1.pool_hits = 0;
  s0.pool_misses = s1.pool_misses = 0;
  s0.slab_allocs = s1.slab_allocs = 0;
  s0.slab_bytes = s1.slab_bytes = 0;
  EXPECT_TRUE(s0 == s1) << "simulated counters diverge between twins";
  if (faulty)
    EXPECT_EQ(c0.clock().stats().fault_retries,
              c1.clock().stats().fault_retries);
}

// The kernel SIMD backend must be invisible to the simulated machine: the
// default (strict-association) dispatch contract says every vectorized
// kernel is bit-identical to its scalar loop, so a twin run with the
// backend disabled has to agree on results, simulated time, traces and
// every SimStats counter — including under a transient fault plan, where a
// divergent checksum would reroute and split the twins' histories.
TEST_P(RandomSweep, SimdBackendInvisibleToSimulatedMachine) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));
  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const CostParams costs = c.ipsc ? CostParams::ipsc() : CostParams::cm2();
  const bool faulty = trial % 2 == 1;

  struct Run {
    std::vector<double> matvec, rows, cols, lu;
    double dotv = 0.0, now = 0.0;
    std::vector<std::string> paths;
    std::vector<TraceEvent> events;
    SimStats stats;
    std::vector<std::size_t> perm;
  };
  const auto run_with = [&](bool simd_on) {
    const bool prev = kern::simd::set_enabled(simd_on);
    Cube cube(c.d, costs);
    if (faulty)
      cube.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
    cube.clock().tracer().set_recording(true);
    Grid grid(cube, c.gr, c.gc);
    const std::vector<double> host =
        random_matrix(c.nrows, c.ncols, static_cast<unsigned>(c.data_seed));
    DistMatrix<double> A(grid, c.nrows, c.ncols, layout);
    A.load(host);
    const std::vector<double> xh =
        random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
    DistVector<double> x(grid, c.ncols, Align::Cols, layout.cols);
    x.load(xh);

    Run out;
    out.matvec = fused_matvec(A, x).to_host();
    out.rows = reduce_rows(A, Plus<double>{}).to_host();
    out.cols = reduce_cols(A, Max<double>{}).to_host();
    DistVector<double> y = extract_row(A, 0);
    vec_axpy(y, 1.5, x);
    vec_scale(y, -0.75);
    out.dotv = dot(y, x);
    const std::size_t n = std::max<std::size_t>(
        2, std::min<std::size_t>(c.nrows, 12));
    const HostMatrix H = diag_dominant_matrix(n, c.data_seed);
    DistMatrix<double> L(grid, n, n, layout);
    L.load(H.data());
    const DistLuResult lu = lu_factor_fused(L);
    out.perm = lu.perm;
    out.lu = L.to_host();
    out.now = cube.clock().now_us();
    out.paths = cube.clock().tracer().paths();
    out.events = cube.clock().tracer().events();
    out.stats = cube.clock().stats();
    kern::simd::set_enabled(prev);
    return out;
  };

  const Run off = run_with(false);
  const Run on = run_with(true);
  EXPECT_EQ(off.matvec, on.matvec) << "fused_matvec diverges";
  EXPECT_EQ(off.rows, on.rows) << "reduce_rows diverges";
  EXPECT_EQ(off.cols, on.cols) << "reduce_cols diverges";
  EXPECT_EQ(off.dotv, on.dotv) << "axpy/scale/dot pipeline diverges";
  EXPECT_EQ(off.perm, on.perm) << "LU pivot order diverges";
  EXPECT_EQ(off.lu, on.lu) << "LU factors diverge";
  EXPECT_EQ(off.now, on.now) << "simulated time diverges";
  EXPECT_EQ(off.paths, on.paths);
  EXPECT_TRUE(off.events == on.events) << "trace events diverge";
  EXPECT_TRUE(off.stats == on.stats) << "SimStats diverge";
  if (faulty)
    EXPECT_EQ(off.stats.fault_retries, on.stats.fault_retries);
}

// lu_factor_fused runs the identical pivot searches and broadcasts but
// collapses each step's four local passes into one fused sweep: factors,
// permutation and simulated-vs-composed cost are checked across random
// dims, layouts and fault plans.
TEST_P(RandomSweep, FusedLuBitIdenticalToComposed) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));
  const std::size_t n = std::max<std::size_t>(2, std::min<std::size_t>(
                                                     c.nrows, 20));
  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const CostParams costs = c.ipsc ? CostParams::ipsc() : CostParams::cm2();
  const bool faulty = trial % 2 == 0;

  Cube c0(c.d, costs), c1(c.d, costs);
  if (faulty) {
    c0.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
    c1.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
  }
  Grid g0(c0, c.gr, c.gc), g1(c1, c.gr, c.gc);
  const HostMatrix H = diag_dominant_matrix(n, c.data_seed);
  DistMatrix<double> A0(g0, n, n, layout);
  DistMatrix<double> A1(g1, n, n, layout);
  A0.load(H.data());
  A1.load(H.data());

  c0.clock().reset();
  c1.clock().reset();
  const DistLuResult r0 = lu_factor(A0);
  const DistLuResult r1 = lu_factor_fused(A1);
  EXPECT_EQ(r0.singular, r1.singular);
  EXPECT_EQ(r0.perm, r1.perm);
  EXPECT_EQ(A0.to_host(), A1.to_host()) << "LU factors diverge";
  EXPECT_LE(c1.clock().now_us(), c0.clock().now_us() + 1e-9)
      << "fused factor must not cost more simulated time";
}

// The fused simplex pivot (SimplexOptions::fused_pivot) must walk the
// exact same vertex sequence and produce the bitwise-identical solution.
TEST_P(RandomSweep, FusedSimplexPivotBitIdenticalToComposed) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));
  const std::size_t ncons = 2 + c.nrows % 6, nvars = 2 + c.ncols % 6;
  const LpProblem lp = trial % 2 == 0
                           ? random_feasible_lp(ncons, nvars, c.data_seed)
                           : random_phase1_lp(ncons, nvars, c.data_seed);
  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const CostParams costs = c.ipsc ? CostParams::ipsc() : CostParams::cm2();

  Cube c0(c.d, costs), c1(c.d, costs);
  Grid g0(c0, c.gr, c.gc), g1(c1, c.gr, c.gc);
  SimplexOptions composed_opts, fused_opts;
  fused_opts.fused_pivot = true;
  const LpSolution s0 = simplex_solve(g0, lp, composed_opts, layout);
  const LpSolution s1 = simplex_solve(g1, lp, fused_opts, layout);
  EXPECT_EQ(s0.status, s1.status);
  EXPECT_EQ(s0.iterations, s1.iterations);
  EXPECT_EQ(s0.phase1_iterations, s1.phase1_iterations);
  EXPECT_EQ(s0.objective, s1.objective) << "objective diverges bitwise";
  EXPECT_EQ(s0.x, s1.x) << "solution vector diverges bitwise";
  EXPECT_LE(c1.clock().now_us(), c0.clock().now_us() + 1e-9);
}

// ---------------------------------------------------------------------------
// Sparse storage (DistSparseMatrix) against the densified dense reference.
// ---------------------------------------------------------------------------

/// One power-law sparse matrix per trial, loaded into both storages on the
/// same grid split.
[[nodiscard]] HostCsr draw_csr(const TrialConfig& c) {
  return power_law_csr(c.nrows, c.ncols, 3.0, 1.0, c.data_seed ^ 0xc513ull);
}

// Sparse primitives vs the dense primitives on the densified matrix.
// Plus-folds and SpMV must agree BITWISE: skipping a stored-zero slot
// only drops ±0.0 terms, which leave a finite accumulator's bits alone
// (see core/kernels.hpp).  Max/Min folds see only stored entries, so they
// are checked against a host fold over the stored pattern instead.
TEST_P(RandomSweep, SparsePrimitivesMatchDensifiedBitwise) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));
  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const CostParams costs = c.ipsc ? CostParams::ipsc() : CostParams::cm2();

  Cube cube(c.d, costs);
  Grid grid(cube, c.gr, c.gc);
  const HostCsr H = draw_csr(c);
  DistSparseMatrix<double> S(grid, c.nrows, c.ncols, layout);
  S.load_csr(H.rowptr, H.colind, H.vals);

  // Round trip and per-element reads.
  EXPECT_EQ(S.to_host(), H.dense()) << "load_csr/to_host round trip";
  EXPECT_EQ(S.nnz(), H.nnz());
  const DistMatrix<double> A = S.densify();
  EXPECT_EQ(A.to_host(), H.dense()) << "densify";
  EXPECT_EQ(S.at(0, H.colind[0]), H.vals[0]);

  // reduce(Plus): bitwise equal to the dense fold.
  EXPECT_EQ(reduce(S, Axis::Row, Plus<double>{}).to_host(),
            reduce(A, Axis::Row, Plus<double>{}).to_host())
      << "reduce_rows(Plus)";
  EXPECT_EQ(reduce(S, Axis::Col, Plus<double>{}).to_host(),
            reduce(A, Axis::Col, Plus<double>{}).to_host())
      << "reduce_cols(Plus)";

  // reduce(Max): folds STORED entries only — host reference over the
  // pattern, seeded with the op identity.
  {
    std::vector<double> expect(c.nrows,
                               std::numeric_limits<double>::lowest());
    for (std::size_t i = 0; i < c.nrows; ++i)
      for (std::uint32_t k = H.rowptr[i]; k < H.rowptr[i + 1]; ++k)
        expect[i] = std::max(expect[i], H.vals[k]);
    EXPECT_EQ(reduce(S, Axis::Row, Max<double>{}).to_host(), expect)
        << "reduce_rows(Max) over the stored pattern";
  }

  // extract: dense lines with zeros at unstored slots.
  const std::size_t pick_i = c.data_seed % c.nrows;
  const std::size_t pick_j = (c.data_seed >> 8) % c.ncols;
  EXPECT_EQ(extract(S, Axis::Row, pick_i).to_host(),
            extract(A, Axis::Row, pick_i).to_host())
      << "extract_row";
  EXPECT_EQ(extract(S, Axis::Col, pick_j).to_host(),
            extract(A, Axis::Col, pick_j).to_host())
      << "extract_col";

  // SpMV: fused vs dense fused bitwise, and composed vs fused bitwise.
  const std::vector<double> xh =
      random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
  DistVector<double> x(grid, c.ncols, Align::Cols, layout.cols);
  x.load(xh);
  EXPECT_EQ(spmv_fused(S, x).to_host(), matvec_fused(A, x).to_host())
      << "spmv_fused vs densified matvec_fused";
  EXPECT_EQ(spmv(S, x).to_host(), spmv_fused(S, x).to_host())
      << "spmv composed vs fused";

  // insert_row is pattern-preserving: stored slots take v, unstored slots
  // keep their implicit zero.
  {
    DistSparseMatrix<double> S2 = S;
    insert_row(S2, pick_i, x);
    std::vector<double> expect = H.dense();
    for (std::size_t j = 0; j < c.ncols; ++j)
      expect[pick_i * c.ncols + j] = 0.0;
    for (std::uint32_t k = H.rowptr[pick_i]; k < H.rowptr[pick_i + 1]; ++k)
      expect[pick_i * c.ncols + H.colind[k]] = xh[H.colind[k]];
    EXPECT_EQ(S2.to_host(), expect) << "insert_row pattern-preserving";
  }
  {
    DistSparseMatrix<double> S2 = S;
    const std::vector<double> vh =
        random_vector(c.nrows, static_cast<unsigned>(c.data_seed >> 16));
    DistVector<double> v(grid, c.nrows, Align::Rows, layout.rows);
    v.load(vh);
    insert_col(S2, pick_j, v);
    std::vector<double> expect = H.dense();
    for (std::size_t i = 0; i < c.nrows; ++i)
      for (std::uint32_t k = H.rowptr[i]; k < H.rowptr[i + 1]; ++k)
        if (H.colind[k] == pick_j) expect[i * c.ncols + pick_j] = vh[i];
    EXPECT_EQ(S2.to_host(), expect) << "insert_col pattern-preserving";
  }
}

// Twin determinism under a within-budget fault plan: the same sparse
// workload on two machines driven by the same plan must agree on results,
// simulated clock, critical paths, event traces and every masked SimStats
// counter — the sparse path inherits the engine's bit-identical replay
// guarantees.
TEST_P(RandomSweep, SparseWorkloadBitIdenticalBetweenFaultTwins) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));
  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const CostParams costs = c.ipsc ? CostParams::ipsc() : CostParams::cm2();

  Cube c0(c.d, costs), c1(c.d, costs);
  c0.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
  c1.enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
  Grid g0(c0, c.gr, c.gc), g1(c1, c.gr, c.gc);
  const HostCsr H = draw_csr(c);
  DistSparseMatrix<double> S0(g0, c.nrows, c.ncols, layout);
  DistSparseMatrix<double> S1(g1, c.nrows, c.ncols, layout);
  S0.load_csr(H.rowptr, H.colind, H.vals);
  S1.load_csr(H.rowptr, H.colind, H.vals);
  const std::vector<double> xh =
      random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
  DistVector<double> x0(g0, c.ncols, Align::Cols, layout.cols);
  DistVector<double> x1(g1, c.ncols, Align::Cols, layout.cols);
  x0.load(xh);
  x1.load(xh);

  c0.clock().reset();
  c1.clock().reset();
  EXPECT_EQ(spmv_fused(S0, x0).to_host(), spmv_fused(S1, x1).to_host());
  EXPECT_EQ(reduce(S0, Axis::Row, Plus<double>{}).to_host(),
            reduce(S1, Axis::Row, Plus<double>{}).to_host());
  EXPECT_EQ(extract(S0, Axis::Col, c.data_seed % c.ncols).to_host(),
            extract(S1, Axis::Col, c.data_seed % c.ncols).to_host());
  EXPECT_EQ(reembed(S0, MatrixLayout::cyclic()).to_host(),
            reembed(S1, MatrixLayout::cyclic()).to_host());

  EXPECT_EQ(c0.clock().now_us(), c1.clock().now_us());
  EXPECT_EQ(c0.clock().tracer().paths(), c1.clock().tracer().paths());
  EXPECT_TRUE(c0.clock().tracer().events() == c1.clock().tracer().events())
      << "sparse twin event traces diverge";
  SimStats s0 = c0.clock().stats(), s1 = c1.clock().stats();
  s0.alloc_bytes = s1.alloc_bytes = 0;
  s0.pool_hits = s1.pool_hits = 0;
  s0.pool_misses = s1.pool_misses = 0;
  s0.slab_allocs = s1.slab_allocs = 0;
  s0.slab_bytes = s1.slab_bytes = 0;
  EXPECT_TRUE(s0 == s1) << "sparse twin counters diverge";
}

// reembed moves every entry verbatim to the target layout's owner, and
// the re-embedded matrix still agrees with its own densified reference —
// the sparse analogue of the realign/extract dense properties.
TEST_P(RandomSweep, ReembedPreservesEntriesAndSpmv) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));
  const CostParams costs = c.ipsc ? CostParams::ipsc() : CostParams::cm2();
  const MatrixLayout from =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const MatrixLayout to =
      c.cyclic ? MatrixLayout::blocked() : MatrixLayout::cyclic();

  Cube cube(c.d, costs);
  Grid grid(cube, c.gr, c.gc);
  const HostCsr H = draw_csr(c);
  DistSparseMatrix<double> S(grid, c.nrows, c.ncols, from);
  S.load_csr(H.rowptr, H.colind, H.vals);

  const DistSparseMatrix<double> R = reembed(S, to);
  EXPECT_EQ(R.layout(), to);
  EXPECT_EQ(R.nnz(), S.nnz());
  EXPECT_EQ(R.to_host(), H.dense()) << "reembed round trip";
  // A same-layout reembed is an identity on the stored data too.
  EXPECT_EQ(reembed(S, from).to_host(), H.dense()) << "same-layout reembed";

  // The re-embedded matrix behaves: fused SpMV in the target layout is
  // bitwise the densified dense product in that layout.
  const std::vector<double> xh =
      random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
  DistVector<double> x(grid, c.ncols, Align::Cols, to.cols);
  x.load(xh);
  EXPECT_EQ(spmv_fused(R, x).to_host(),
            matvec_fused(R.densify(), x).to_host())
      << "spmv_fused after reembed";
}

}  // namespace
}  // namespace vmp
