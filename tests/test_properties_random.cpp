// Property-based randomized sweep (satellite of the fault-injection PR):
// all eight primitives checked against straight-line host references over
// random grid splits (gr + gc = d for d = 1..8), ragged matrix extents,
// both machine presets and both layouts.  Every draw derives from
// global_seed(), so any failure is reproducible with the one-line recipe
// in its message: export the printed VMP_SEED and rerun the test.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/primitives.hpp"
#include "util/rng.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

const std::uint64_t kBaseSeed = announce_seed("test_properties_random");

struct TrialConfig {
  int d, gr, gc;
  std::size_t nrows, ncols;
  bool cyclic;
  bool ipsc;
  std::uint64_t data_seed;

  [[nodiscard]] std::string reproducer(int trial) const {
    return "reproduce: VMP_SEED=" + std::to_string(kBaseSeed) +
           " ./test_properties_random  (trial " + std::to_string(trial) +
           ": d=" + std::to_string(d) + " gr=" + std::to_string(gr) +
           " gc=" + std::to_string(gc) + " n=" + std::to_string(nrows) + "x" +
           std::to_string(ncols) + (cyclic ? " cyclic" : " blocked") +
           (ipsc ? " ipsc" : " cm2") + ")";
  }
};

/// Draw one trial configuration; all randomness flows from (base seed,
/// trial), nothing else.
[[nodiscard]] TrialConfig draw(int trial) {
  SplitMix64 rng(kBaseSeed + static_cast<std::uint64_t>(trial) * 0x9e37ull);
  TrialConfig c;
  c.d = 1 + static_cast<int>(rng.below(8));  // 1..8 → 2..256 processors
  c.gr = static_cast<int>(rng.below(static_cast<std::uint64_t>(c.d) + 1));
  c.gc = c.d - c.gr;
  // Ragged on purpose: extents not multiples of the grid, down to 1.
  c.nrows = 1 + rng.below(48);
  c.ncols = 1 + rng.below(48);
  c.cyclic = rng.below(2) == 0;
  c.ipsc = rng.below(2) == 0;
  c.data_seed = rng.next();
  return c;
}

class RandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomSweep, AllPrimitivesMatchHostReferences) {
  const int trial = GetParam();
  const TrialConfig c = draw(trial);
  SCOPED_TRACE(c.reproducer(trial));

  Cube cube(c.d, c.ipsc ? CostParams::ipsc() : CostParams::cm2());
  Grid grid(cube, c.gr, c.gc);
  const std::vector<double> host =
      random_matrix(c.nrows, c.ncols, static_cast<unsigned>(c.data_seed));
  const auto h = [&](std::size_t i, std::size_t j) {
    return host[i * c.ncols + j];
  };
  DistMatrix<double> A(grid, c.nrows, c.ncols,
                       c.cyclic ? MatrixLayout::cyclic()
                                : MatrixLayout::blocked());
  A.load(host);
  EXPECT_EQ(A.to_host(), host) << "load/to_host round trip";

  SplitMix64 rng(c.data_seed ^ 0xfeedULL);
  const std::size_t pick_i = rng.below(c.nrows);
  const std::size_t pick_j = rng.below(c.ncols);

  // 1+2: reduce_rows / reduce_cols (sum within tolerance, max exact).
  {
    const std::vector<double> got = reduce_rows(A, Plus<double>{}).to_host();
    ASSERT_EQ(got.size(), c.nrows);
    for (std::size_t i = 0; i < c.nrows; ++i) {
      double want = 0;
      for (std::size_t j = 0; j < c.ncols; ++j) want += h(i, j);
      EXPECT_NEAR(got[i], want, 1e-12 * static_cast<double>(c.ncols + 1))
          << "reduce_rows row " << i;
    }
    const std::vector<double> gmax = reduce_rows(A, Max<double>{}).to_host();
    for (std::size_t i = 0; i < c.nrows; ++i) {
      double want = std::numeric_limits<double>::lowest();
      for (std::size_t j = 0; j < c.ncols; ++j) want = std::max(want, h(i, j));
      EXPECT_EQ(gmax[i], want) << "reduce_rows(max) row " << i;
    }
  }
  {
    const std::vector<double> got = reduce_cols(A, Plus<double>{}).to_host();
    ASSERT_EQ(got.size(), c.ncols);
    for (std::size_t j = 0; j < c.ncols; ++j) {
      double want = 0;
      for (std::size_t i = 0; i < c.nrows; ++i) want += h(i, j);
      EXPECT_NEAR(got[j], want, 1e-12 * static_cast<double>(c.nrows + 1))
          << "reduce_cols col " << j;
    }
  }

  // 3+4: extract_row / extract_col (pure data motion: exact).
  {
    const DistVector<double> row = extract_row(A, pick_i);
    EXPECT_EQ(row.align(), Align::Cols);
    EXPECT_TRUE(row.replicas_consistent());
    const std::vector<double> got = row.to_host();
    ASSERT_EQ(got.size(), c.ncols);
    for (std::size_t j = 0; j < c.ncols; ++j)
      EXPECT_EQ(got[j], h(pick_i, j)) << "extract_row col " << j;
  }
  {
    const DistVector<double> col = extract_col(A, pick_j);
    EXPECT_EQ(col.align(), Align::Rows);
    EXPECT_TRUE(col.replicas_consistent());
    const std::vector<double> got = col.to_host();
    ASSERT_EQ(got.size(), c.nrows);
    for (std::size_t i = 0; i < c.nrows; ++i)
      EXPECT_EQ(got[i], h(i, pick_j)) << "extract_col row " << i;
  }

  // 5+6: distribute_rows / distribute_cols (replication: exact).
  const std::vector<double> vc_host =
      random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8));
  const std::vector<double> vr_host =
      random_vector(c.nrows, static_cast<unsigned>(c.data_seed >> 16));
  // insert_row/col require the vector's partition kind to match the
  // matrix axis it lands on.
  const Part part = c.cyclic ? Part::Cyclic : Part::Block;
  DistVector<double> vc(grid, c.ncols, Align::Cols, part);
  DistVector<double> vr(grid, c.nrows, Align::Rows, part);
  vc.load(vc_host);
  vr.load(vr_host);
  {
    const std::vector<double> got = distribute_rows(vc, c.nrows).to_host();
    ASSERT_EQ(got.size(), c.nrows * c.ncols);
    for (std::size_t i = 0; i < c.nrows; ++i)
      for (std::size_t j = 0; j < c.ncols; ++j)
        EXPECT_EQ(got[i * c.ncols + j], vc_host[j])
            << "distribute_rows (" << i << "," << j << ")";
  }
  {
    const std::vector<double> got = distribute_cols(vr, c.ncols).to_host();
    ASSERT_EQ(got.size(), c.nrows * c.ncols);
    for (std::size_t i = 0; i < c.nrows; ++i)
      for (std::size_t j = 0; j < c.ncols; ++j)
        EXPECT_EQ(got[i * c.ncols + j], vr_host[i])
            << "distribute_cols (" << i << "," << j << ")";
  }

  // 7+8: insert_row / insert_col (exact, and only the target line moves).
  {
    std::vector<double> want = host;
    for (std::size_t j = 0; j < c.ncols; ++j)
      want[pick_i * c.ncols + j] = vc_host[j];
    insert_row(A, pick_i, vc);
    EXPECT_EQ(A.to_host(), want) << "insert_row";
    for (std::size_t i = 0; i < c.nrows; ++i)
      want[i * c.ncols + pick_j] = vr_host[i];
    insert_col(A, pick_j, vr);
    EXPECT_EQ(A.to_host(), want) << "insert_col";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomSweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace vmp
