// Machine-level fault recovery: the exchange variants and the naive router
// under seeded fault plans.  The contract under test is the tentpole's —
// within-budget plans change *when* and *what is charged*, never the data
// delivered; beyond-budget plans throw FaultError instead of degrading
// silently.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "comm/router.hpp"
#include "embed/realign.hpp"
#include "hypercube/machine.hpp"
#include "obs/report.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

/// Options pinning the hypercube preset: tests asserting cube-specific
/// recovery shapes (3-hop detours, cut sets of the cube graph) must not
/// drift when the suite runs under VMP_TOPOLOGY=mesh (the CI mesh leg).
[[nodiscard]] Cube::Options hypercube_opts() {
  Cube::Options opts;
  opts.topology = TopologyKind::Hypercube;
  return opts;
}

/// Run `rounds` full one-port exchange rounds (every processor swaps a
/// small distinct payload with its dim-d partner, cycling d) and return
/// every processor's final receive buffer.
std::vector<std::vector<double>> exchange_workout(Cube& cube, int rounds) {
  const proc_t p = cube.procs();
  std::vector<std::vector<double>> held(p), got(p);
  for (proc_t q = 0; q < p; ++q)
    held[q] = {static_cast<double>(q), static_cast<double>(q) * 0.5 + 1.0};
  for (int r = 0; r < rounds; ++r) {
    const int d = r % cube.dim();
    cube.exchange<double>(
        d, [&](proc_t q) { return std::span<const double>(held[q]); },
        [&](proc_t q, std::span<const double> in) {
          got[q].assign(in.begin(), in.end());
        });
    for (proc_t q = 0; q < p; ++q) held[q] = got[q];
  }
  return held;
}

TEST(FaultRecovery, InertPlanIsBitIdenticalToNoInjector) {
  Cube plain(3, CostParams::cm2());
  plain.clock().tracer().set_recording(true);
  const auto want = exchange_workout(plain, 6);

  Cube faulty(3, CostParams::cm2());
  faulty.clock().tracer().set_recording(true);
  faulty.enable_faults(FaultPlan::none());
  const auto got = exchange_workout(faulty, 6);

  EXPECT_EQ(got, want);
  EXPECT_EQ(faulty.clock().now_us(), plain.clock().now_us());
  EXPECT_EQ(faulty.clock().comm_us(), plain.clock().comm_us());
  EXPECT_EQ(faulty.clock().stats().comm_steps, plain.clock().stats().comm_steps);
  EXPECT_EQ(faulty.clock().stats().messages, plain.clock().stats().messages);
  EXPECT_EQ(faulty.clock().stats().fault_retries, 0u);
  // Even the event trace matches, event for event.
  EXPECT_EQ(faulty.clock().tracer().events(), plain.clock().tracer().events());
}

TEST(FaultRecovery, DropsAreRetriedAndDataIsIdentical) {
  Cube plain(3, CostParams::cm2());
  const auto want = exchange_workout(plain, 12);

  Cube faulty(3, CostParams::cm2());
  faulty.enable_faults(FaultPlan::transient(5, /*drop=*/0.3, /*corrupt=*/0.0));
  const auto got = exchange_workout(faulty, 12);

  EXPECT_EQ(got, want);  // bit-identical payloads despite the losses
  EXPECT_GT(faulty.clock().stats().fault_retries, 0u);
  EXPECT_GT(faulty.clock().now_us(), plain.clock().now_us())
      << "retries must cost simulated time";
}

TEST(FaultRecovery, CorruptionIsCaughtByChecksumAndRetried) {
  Cube plain(3, CostParams::cm2());
  const auto want = exchange_workout(plain, 12);

  Cube faulty(3, CostParams::cm2());
  faulty.enable_faults(FaultPlan::transient(6, 0.0, /*corrupt=*/0.3));
  const auto got = exchange_workout(faulty, 12);

  EXPECT_EQ(got, want);
  EXPECT_GT(faulty.clock().stats().fault_chksum_fails, 0u);
  EXPECT_EQ(faulty.clock().stats().fault_chksum_fails,
            faulty.clock().stats().fault_retries)
      << "every checksum reject is exactly one retry here (no drops)";
}

TEST(FaultRecovery, RecoveryCostsLandInFaultRegions) {
  Cube cube(3, CostParams::cm2());
  cube.enable_faults(FaultPlan::transient(5, 0.3, 0.1, 0.2, 40.0));
  (void)exchange_workout(cube, 12);
  ASSERT_GT(cube.clock().stats().fault_retries, 0u);
  const auto inclusive = cube.clock().tracer().inclusive_profiles();
  double retry_us = 0.0, spike_us = 0.0;
  for (const auto& [path, prof] : inclusive) {
    if (path.find("fault_retry") != std::string::npos)
      retry_us += prof.total_us();
    if (path.find("fault_spike") != std::string::npos)
      spike_us += prof.total_us();
  }
  EXPECT_GT(retry_us, 0.0);
  EXPECT_GT(spike_us, 0.0);
  // The JSON report carries the same attribution.
  const std::string json = profile_to_json(cube.clock());
  EXPECT_NE(json.find("fault_retry"), std::string::npos);
  EXPECT_NE(json.find("\"fault_retries\":"), std::string::npos);
}

TEST(FaultRecovery, SpikeStallsTheRoundByItsLatency) {
  // spike_prob = 1: every round pays exactly one spike (max over edges).
  Cube plain(2, CostParams::cm2());
  const auto want = exchange_workout(plain, 4);
  Cube faulty(2, CostParams::cm2());
  faulty.enable_faults(FaultPlan::transient(1, 0.0, 0.0, 1.0, 50.0));
  const auto got = exchange_workout(faulty, 4);
  EXPECT_EQ(got, want);
  EXPECT_DOUBLE_EQ(faulty.clock().now_us(), plain.clock().now_us() + 4 * 50.0);
}

TEST(FaultRecovery, DeadLinkIsRoutedAroundParallelPaths) {
  FaultPlan plan;
  plan.link_kills.push_back({/*from_round=*/0, /*node=*/0, /*dim=*/0});

  Cube plain(3, CostParams::cm2(), hypercube_opts());
  const auto want = exchange_workout(plain, 6);
  Cube faulty(3, CostParams::cm2(), hypercube_opts());
  faulty.enable_faults(plan);
  const auto got = exchange_workout(faulty, 6);

  EXPECT_EQ(got, want);  // the detour carries the same payload
  EXPECT_GT(faulty.clock().stats().fault_reroutes, 0u);
  EXPECT_GT(faulty.clock().now_us(), plain.clock().now_us())
      << "3-hop detours must cost more than the dead direct hop";
  const std::string json = profile_to_json(faulty.clock());
  EXPECT_NE(json.find("fault_reroute"), std::string::npos);
}

TEST(FaultRecovery, FullyCutDetourThrowsInsteadOfWrongAnswer) {
  // Kill every link of node 0 except dim 0, then exchange across dim 0's
  // dead partner link: no live detour exists in a 2-cube.  (On a mesh the
  // same kills leave other ports live, hence the pinned preset.)
  FaultPlan plan;
  plan.link_kills.push_back({0, /*node=*/0, /*dim=*/0});
  plan.link_kills.push_back({0, /*node=*/0, /*dim=*/1});
  Cube cube(2, CostParams::cm2(), hypercube_opts());
  cube.enable_faults(plan);
  EXPECT_THROW(exchange_workout(cube, 1), FaultError);
}

TEST(FaultRecovery, TorusRoutesAroundADeadLinkViaTheWrapPath) {
  // A 4×4 torus (dim 4, axis extents 4 and 4).  Port 0 of node 0 is the
  // +x link 0→1; a logical dim-1 exchange moves ±2 along x, routed
  // 0→1→2, so killing (0, port 0) compromises a multi-hop route whose
  // dead link is NOT a logical cube edge of the exchange.  The machine
  // must route around it (the wrap path 0→3→2 exists on the torus) and
  // deliver bit-identical data at a strictly higher simulated cost.
  Cube::Options torus;
  torus.topology = TopologyKind::Torus;
  FaultPlan plan;
  plan.link_kills.push_back({/*from_round=*/0, /*node=*/0, /*dim=*/0});

  Cube plain(4, CostParams::cm2(), torus);
  const auto want = exchange_workout(plain, 8);
  Cube faulty(4, CostParams::cm2(), torus);
  faulty.enable_faults(plan);
  const auto got = exchange_workout(faulty, 8);

  EXPECT_EQ(got, want);
  EXPECT_GT(faulty.clock().stats().fault_reroutes, 0u);
  EXPECT_GT(faulty.clock().now_us(), plain.clock().now_us())
      << "the wrap detour must cost more than the dead direct route";
  const std::string json = profile_to_json(faulty.clock());
  EXPECT_NE(json.find("fault_reroute"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"torus\""), std::string::npos)
      << "the profile must identify the topology it was charged on";
}

TEST(FaultRecovery, DeadNodeThrowsWithRemapHint) {
  FaultPlan plan;
  plan.node_kills.push_back({/*from_round=*/0, /*node=*/3});
  Cube cube(3, CostParams::cm2());
  cube.enable_faults(plan);
  try {
    (void)exchange_workout(cube, 1);
    FAIL() << "exchange involving a dead node must throw";
  } catch (const FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("remap"), std::string::npos)
        << "the error should point at the embedding-remap recovery";
  }
}

TEST(FaultRecovery, NodeKillInTheFutureIsHarmlessUntilItsRound) {
  FaultPlan plan;
  plan.node_kills.push_back({/*from_round=*/4, /*node=*/1});
  Cube cube(2, CostParams::cm2());
  cube.enable_faults(plan);
  (void)exchange_workout(cube, 4);  // rounds 0..3: fine
  EXPECT_THROW(exchange_workout(cube, 1), FaultError);  // round 4: dead
}

TEST(FaultRecovery, RetryBudgetExhaustionThrows) {
  Cube cube(2, CostParams::cm2());
  cube.enable_faults(FaultPlan::transient(3, /*drop=*/1.0, 0.0),
                     RecoveryPolicy{/*max_retries=*/4, /*backoff_us=*/1.0});
  try {
    (void)exchange_workout(cube, 1);
    FAIL() << "a 100% drop plan can never deliver";
  } catch (const FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
  }
}

TEST(FaultRecovery, BackoffGrowsExponentially) {
  // drop_prob = 1 with a generous budget: attempt k pays backoff 2^(k-1).
  // Compare total time under max_retries budgets that differ by one.
  const auto time_with = [](int retries) {
    Cube cube(2, CostParams::cm2());
    cube.enable_faults(FaultPlan::transient(3, 1.0, 0.0),
                       RecoveryPolicy{retries, /*backoff_us=*/8.0});
    try {
      (void)exchange_workout(cube, 1);
    } catch (const FaultError&) {
    }
    return cube.clock().now_us();
  };
  const double t3 = time_with(3), t4 = time_with(4), t5 = time_with(5);
  // Extra backoff of attempt k is 8·2^(k-1): the increments double (plus
  // the constant retransmission step).
  EXPECT_GT(t4 - t3, 0.0);
  EXPECT_GT(t5 - t4, t4 - t3);
}

TEST(FaultRecovery, AllportExchangeRecovers) {
  Cube plain(3, CostParams::cm2());
  Cube faulty(3, CostParams::cm2());
  faulty.enable_faults(FaultPlan::transient(9, 0.25, 0.1));
  const int dims[2] = {0, 2};
  const auto run = [&](Cube& cube) {
    std::vector<std::vector<double>> got(cube.procs() * 2);
    std::vector<std::vector<double>> payload(cube.procs());
    for (proc_t q = 0; q < cube.procs(); ++q)
      payload[q] = {static_cast<double>(q) + 0.25};
    cube.exchange_allport<double>(
        std::span<const int>(dims, 2),
        [&](proc_t q, std::size_t) {
          return std::span<const double>(payload[q]);
        },
        [&](proc_t q, std::size_t idx, std::span<const double> in) {
          got[q * 2 + idx].assign(in.begin(), in.end());
        });
    return got;
  };
  EXPECT_EQ(run(faulty), run(plain));
  EXPECT_GT(faulty.clock().stats().fault_retries, 0u);
}

TEST(FaultRecovery, NeighborExchangeRecovers) {
  Cube plain(3, CostParams::cm2());
  Cube faulty(3, CostParams::cm2());
  faulty.enable_faults(FaultPlan::transient(13, 0.25, 0.1));
  const auto run = [&](Cube& cube) {
    std::vector<std::vector<double>> got(cube.procs());
    std::vector<std::vector<double>> payload(cube.procs());
    for (proc_t q = 0; q < cube.procs(); ++q)
      payload[q] = {static_cast<double>(q) * 3.0};
    cube.neighbor_exchange<double>(
        [](proc_t q) { return q ^ 1u; },
        [&](proc_t q) { return std::span<const double>(payload[q]); },
        [&](proc_t q, std::span<const double> in) {
          got[q].assign(in.begin(), in.end());
        });
    return got;
  };
  EXPECT_EQ(run(faulty), run(plain));
  EXPECT_GT(faulty.clock().stats().fault_retries, 0u);
}

TEST(FaultRecovery, SameSeedReproducesTheExactEventTrace) {
  const auto trace = [](std::uint64_t seed) {
    Cube cube(3, CostParams::cm2());
    cube.clock().tracer().set_recording(true);
    cube.enable_faults(FaultPlan::transient(seed, 0.2, 0.1, 0.05, 30.0));
    (void)exchange_workout(cube, 10);
    return cube.clock().tracer().events();
  };
  const auto a = trace(77), b = trace(77), c = trace(78);
  EXPECT_EQ(a, b) << "same plan seed must replay the identical event trace";
  EXPECT_NE(a, c) << "a different seed should perturb the schedule";
}

TEST(FaultRecovery, DisableFaultsRestoresTheFastPath) {
  Cube plain(3, CostParams::cm2());
  const auto want = exchange_workout(plain, 4);
  Cube cube(3, CostParams::cm2());
  cube.enable_faults(FaultPlan::transient(5, 0.5, 0.0));
  cube.disable_faults();
  EXPECT_EQ(cube.faults(), nullptr);
  const auto got = exchange_workout(cube, 4);
  EXPECT_EQ(got, want);
  EXPECT_EQ(cube.clock().now_us(), plain.clock().now_us());
  EXPECT_EQ(cube.clock().stats().fault_retries, 0u);
}

// ---------------------------------------------------------------------------
// The naive general router under faults.

TEST(FaultRouter, TransientFaultsDoNotChangeDeliveries) {
  const auto run = [](Cube& cube) {
    NaiveRouter router(cube);
    std::vector<std::vector<Packet>> packets(cube.procs());
    for (proc_t q = 0; q < cube.procs(); ++q)
      packets[q].push_back(
          Packet{static_cast<proc_t>(cube.procs() - 1 - q), q,
                 static_cast<double>(q) + 0.5});
    std::vector<double> arrived(cube.procs(), -1.0);
    std::vector<int> count(cube.procs(), 0);
    (void)router.run(packets, [&](proc_t dst, std::uint64_t, double v) {
      arrived[dst] = v;
      ++count[dst];
    });
    for (int c : count) EXPECT_EQ(c, 1) << "exactly-once delivery";
    return arrived;
  };
  Cube plain(4, CostParams::cm2());
  Cube faulty(4, CostParams::cm2());
  faulty.enable_faults(FaultPlan::transient(21, 0.2, 0.1));
  EXPECT_EQ(run(faulty), run(plain));
  EXPECT_GT(faulty.clock().stats().fault_retries, 0u);
  EXPECT_GT(faulty.clock().now_us(), plain.clock().now_us());
}

TEST(FaultRouter, DeadLinkIsDodgedViaAnotherDimension) {
  // 0 → 7 normally leaves over dim 0; kill that link and the packet must
  // still arrive (dim 1 or 2 is an equally short first hop).
  FaultPlan plan;
  plan.link_kills.push_back({0, /*node=*/0, /*dim=*/0});
  Cube cube(3, CostParams::cm2(), hypercube_opts());
  cube.enable_faults(plan);
  NaiveRouter router(cube);
  std::vector<std::vector<Packet>> packets(cube.procs());
  packets[0].push_back(Packet{7, 42, 3.25});
  bool delivered = false;
  (void)router.run(packets, [&](proc_t dst, std::uint64_t tag, double v) {
    EXPECT_EQ(dst, 7u);
    EXPECT_EQ(tag, 42u);
    EXPECT_EQ(v, 3.25);
    delivered = true;
  });
  EXPECT_TRUE(delivered);
}

TEST(FaultRouter, DeadLastHopForcesASidewaysDetour) {
  // 0 → 1 differs only in dim 0; with (0,1) dead the router must detour
  // sideways (a reroute) and still deliver.
  FaultPlan plan;
  plan.link_kills.push_back({0, /*node=*/0, /*dim=*/0});
  Cube cube(3, CostParams::cm2(), hypercube_opts());
  cube.enable_faults(plan);
  NaiveRouter router(cube);
  std::vector<std::vector<Packet>> packets(cube.procs());
  packets[0].push_back(Packet{1, 7, -1.5});
  bool delivered = false;
  (void)router.run(packets, [&](proc_t dst, std::uint64_t tag, double v) {
    EXPECT_EQ(dst, 1u);
    EXPECT_EQ(tag, 7u);
    EXPECT_EQ(v, -1.5);
    delivered = true;
  });
  EXPECT_TRUE(delivered);
  EXPECT_GT(cube.clock().stats().fault_reroutes, 0u);
}

TEST(FaultRouter, HundredPercentDropExhaustsTheBudget) {
  Cube cube(2, CostParams::cm2());
  cube.enable_faults(FaultPlan::transient(2, 1.0, 0.0));
  NaiveRouter router(cube);
  std::vector<std::vector<Packet>> packets(cube.procs());
  packets[0].push_back(Packet{3, 0, 1.0});
  EXPECT_THROW(
      (void)router.run(packets, [](proc_t, std::uint64_t, double) {}),
      FaultError);
}

// ---------------------------------------------------------------------------
// Graceful embedding remap off a failed node.

TEST(FaultRemap, ReplicatedVectorRecoversTheLostPiece) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistVector<double> v(grid, 24, Align::Cols);
  v.load(random_vector(24, 3));
  const std::vector<double> want = v.to_host();

  const proc_t failed = 5;
  // The node's local piece is lost with it (the hot spare boots blank).
  for (double& x : v.data().tile(failed)) x = -999.0;
  remap_off_failed(v, failed);

  EXPECT_TRUE(v.replicas_consistent());
  EXPECT_EQ(v.to_host(), want);
  const std::string json = profile_to_json(cube.clock());
  EXPECT_NE(json.find("fault_remap"), std::string::npos)
      << "remap cost must be attributed in the profile";
}

TEST(FaultRemap, EveryNodeIsRecoverable) {
  Cube cube(3, CostParams::cm2());
  Grid grid(cube, 2, 1);
  for (proc_t failed = 0; failed < cube.procs(); ++failed) {
    DistVector<double> v(grid, 10, Align::Rows);
    v.load(random_vector(10, 4));
    const std::vector<double> want = v.to_host();
    for (double& x : v.data().tile(failed)) x = 1e300;
    remap_off_failed(v, failed);
    EXPECT_EQ(v.to_host(), want) << "failed node " << failed;
  }
}

TEST(FaultRemap, LinearVectorIsUnrecoverable) {
  Cube cube(3, CostParams::cm2());
  Grid grid(cube, 2, 1);
  DistVector<double> v(grid, 16, Align::Linear);
  v.load(random_vector(16, 5));
  EXPECT_THROW(remap_off_failed(v, 2), FaultError);
}

}  // namespace
}  // namespace vmp
