// Unit tests: the lockstep machine engine, cost model, simulated clock,
// worker team and the naive packet router.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "comm/dist_buffer.hpp"
#include "comm/router.hpp"
#include "hypercube/machine.hpp"
#include "hypercube/team.hpp"

namespace vmp {
namespace {

// Cost-exact goldens below assume the paper machine: pin the hypercube
// preset so the CI mesh leg (VMP_TOPOLOGY=mesh) leaves the charges alone.
Cube::Options pin_hypercube() {
  Cube::Options o;
  o.topology = TopologyKind::Hypercube;
  return o;
}

TEST(CostModel, PresetsAreSane) {
  for (const CostParams& p :
       {CostParams::cm2(), CostParams::ipsc(), CostParams::unit()}) {
    EXPECT_GT(p.startup_us, 0.0) << p.name;
    EXPECT_GT(p.per_elem_us, 0.0) << p.name;
    EXPECT_GT(p.flop_us, 0.0) << p.name;
    EXPECT_FALSE(p.name.empty());
  }
  EXPECT_EQ(CostParams::free_comm().startup_us, 0.0);
}

TEST(Cube, BasicGeometry) {
  Cube cube(4, CostParams::unit());
  EXPECT_EQ(cube.dim(), 4);
  EXPECT_EQ(cube.procs(), 16u);
  EXPECT_THROW(Cube(-1, CostParams::unit()), ContractError);
  EXPECT_THROW(Cube(31, CostParams::unit()), ContractError);
}

TEST(Cube, ComputeChargesFlops) {
  Cube cube(3, CostParams::unit());
  std::atomic<int> calls{0};
  cube.compute(10, [&](proc_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
  EXPECT_DOUBLE_EQ(cube.clock().now_us(), 10.0);  // unit t_a, max 10 flops
  EXPECT_EQ(cube.clock().stats().flops_charged, 10u);
  EXPECT_EQ(cube.clock().stats().flops_total, 80u);
}

TEST(Cube, ExchangeMovesDataAndCharges) {
  Cube cube(3, CostParams::unit(), pin_hypercube());
  DistBuffer<int> in(cube), out(cube);
  cube.each_proc([&](proc_t q) {
    in.assign(q, 4, static_cast<int>(q));
    out.assign(q, 4, -1);
  });
  cube.exchange<int>(
      1, [&](proc_t q) { return std::span<const int>(in.tile(q)); },
      [&](proc_t q, std::span<const int> data) {
        std::copy(data.begin(), data.end(), out.tile(q).begin());
      });
  cube.each_proc([&](proc_t q) {
    for (int x : out.tile(q)) EXPECT_EQ(x, static_cast<int>(q ^ 2u));
  });
  // One step: τ + 4·t_c = 1 + 4 under the unit model.
  EXPECT_DOUBLE_EQ(cube.clock().now_us(), 5.0);
  EXPECT_EQ(cube.clock().stats().messages, 8u);
  EXPECT_EQ(cube.clock().stats().elements_moved, 32u);
}

TEST(Cube, EmptySendsAreFree) {
  Cube cube(3, CostParams::unit());
  cube.exchange<int>(
      0, [&](proc_t) { return std::span<const int>{}; },
      [&](proc_t, std::span<const int>) { FAIL() << "no one sent anything"; });
  EXPECT_DOUBLE_EQ(cube.clock().now_us(), 0.0);
  EXPECT_EQ(cube.clock().stats().comm_steps, 0u);
}

TEST(Cube, InPlaceCombineIsSafe) {
  // recv may overwrite the very buffer send exposed (staging protects it).
  Cube cube(2, CostParams::unit());
  DistBuffer<int> buf(cube);
  cube.each_proc([&](proc_t q) { buf.assign(q, 1, int(q) + 1); });
  cube.exchange<int>(
      0, [&](proc_t q) { return std::span<const int>(buf.tile(q)); },
      [&](proc_t q, std::span<const int> data) {
        buf.tile(q)[0] += data[0];
      });
  cube.each_proc([&](proc_t q) {
    const int partner = static_cast<int>(q ^ 1u) + 1;
    EXPECT_EQ(buf.tile(q)[0], int(q) + 1 + partner);
  });
}

TEST(Cube, ResultsIdenticalUnderHostThreading) {
  auto run = [](unsigned threads) {
    Cube cube(4, CostParams::cm2(), Cube::Options{threads});
    DistBuffer<double> buf(cube);
    cube.each_proc([&](proc_t q) {
      buf.assign(q, 16, static_cast<double>(q));
    });
    for (int d = 0; d < 4; ++d) {
      cube.exchange<double>(
          d, [&](proc_t q) { return std::span<const double>(buf.tile(q)); },
          [&](proc_t q, std::span<const double> in) {
            for (std::size_t t = 0; t < in.size(); ++t)
              buf.tile(q)[t] += in[t];
          });
    }
    std::vector<double> flat;
    cube.each_proc([&](proc_t q) {
      flat.insert(flat.end(), buf.tile(q).begin(), buf.tile(q).end());
    });
    return std::pair{flat, cube.clock().now_us()};
  };
  const auto [serial_data, serial_time] = run(1);
  const auto [pooled_data, pooled_time] = run(4);
  EXPECT_EQ(serial_data, pooled_data);
  EXPECT_DOUBLE_EQ(serial_time, pooled_time)
      << "host threads must never change simulated time";
}

TEST(WorkerTeam, CoversAllItemsExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u}) {
    WorkerTeam team(threads);
    EXPECT_EQ(team.lanes(), threads);
    std::vector<std::atomic<int>> hits(1000);
    team.step(1000, [&](unsigned, std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ++hits[i];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << threads;
  }
}

TEST(WorkerTeam, PartitionIsStaticMonotoneAndExhaustive) {
  // Lane w of L always owns [n·w/L, n·(w+1)/L): the partition depends only
  // on (items, lanes), covers everything, and never reorders.
  for (unsigned lanes : {1u, 2u, 3u, 5u, 8u}) {
    for (std::size_t items : {0u, 1u, 7u, 256u, 1000u}) {
      EXPECT_EQ(WorkerTeam::lane_begin(items, 0, lanes), 0u);
      EXPECT_EQ(WorkerTeam::lane_begin(items, lanes, lanes), items);
      for (unsigned w = 0; w < lanes; ++w)
        EXPECT_LE(WorkerTeam::lane_begin(items, w, lanes),
                  WorkerTeam::lane_begin(items, w + 1, lanes));
    }
  }
}

TEST(WorkerTeam, PropagatesExceptions) {
  WorkerTeam team(3);
  EXPECT_THROW(
      team.step(100,
                [&](unsigned, std::size_t lo, std::size_t hi) {
                  for (std::size_t i = lo; i < hi; ++i)
                    if (i == 57) throw std::runtime_error("x");
                }),
      std::runtime_error);
  // Team must still be usable afterwards (the barrier completed).
  std::atomic<int> n{0};
  team.step(10, [&](unsigned, std::size_t lo, std::size_t hi) {
    n += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(n.load(), 10);
}

TEST(WorkerTeam, EmptyStepIsANoop) {
  WorkerTeam team(2);
  team.step(0, [&](unsigned, std::size_t, std::size_t) { FAIL(); });
}

TEST(WorkerTeam, SessionsNestAndStepsRunInside) {
  WorkerTeam team(2);
  EXPECT_FALSE(team.in_session());
  std::atomic<int> n{0};
  {
    auto outer = team.session();
    EXPECT_TRUE(team.in_session());
    {
      auto inner = team.session();
      for (int round = 0; round < 16; ++round)
        team.step(64, [&](unsigned, std::size_t lo, std::size_t hi) {
          n += static_cast<int>(hi - lo);
        });
    }
    EXPECT_TRUE(team.in_session());
  }
  EXPECT_FALSE(team.in_session());
  EXPECT_EQ(n.load(), 16 * 64);
}

TEST(WorkerTeam, InStepCoversInlineExecution) {
  WorkerTeam team(1);  // zero workers: step runs inline
  EXPECT_FALSE(team.in_step());
  team.step(4, [&](unsigned, std::size_t, std::size_t) {
    EXPECT_TRUE(team.in_step());
  });
  EXPECT_FALSE(team.in_step());
}

TEST(Router, DeliversEverythingToTheRightPlace) {
  Cube cube(4, CostParams::cm2());
  std::vector<std::vector<Packet>> inject(cube.procs());
  std::vector<std::vector<double>> got(cube.procs());
  int expected = 0;
  for (proc_t src = 0; src < cube.procs(); ++src)
    for (proc_t dst = 0; dst < cube.procs(); ++dst) {
      inject[src].push_back(Packet{dst, dst, double(src * 100 + dst)});
      ++expected;
    }
  NaiveRouter router(cube);
  int delivered = 0;
  router.run(std::move(inject),
             [&](proc_t dst, std::uint64_t tag, double value) {
               EXPECT_EQ(tag, dst);
               got[dst].push_back(value);
               ++delivered;
             });
  EXPECT_EQ(delivered, expected);
  for (proc_t dst = 0; dst < cube.procs(); ++dst)
    EXPECT_EQ(got[dst].size(), cube.procs());
}

TEST(Router, ChargesPerHopNotPerMessage) {
  Cube cube(4, CostParams::unit(), pin_hypercube());
  // One packet to the antipode: 4 hops = 4 cycles.
  std::vector<std::vector<Packet>> inject(cube.procs());
  inject[0].push_back(Packet{15, 0, 1.0});
  NaiveRouter router(cube);
  const std::uint64_t cycles = router.run(
      std::move(inject), [&](proc_t, std::uint64_t, double) {});
  EXPECT_EQ(cycles, 4u);
  EXPECT_EQ(cube.clock().stats().router_hops, 4u);
  // unit model: each cycle costs router_startup + per_elem = 2.
  EXPECT_DOUBLE_EQ(cube.clock().now_us(), 8.0);
}

TEST(Router, LocalPacketsAreFree) {
  Cube cube(3, CostParams::unit());
  std::vector<std::vector<Packet>> inject(cube.procs());
  inject[5].push_back(Packet{5, 1, 2.0});
  NaiveRouter router(cube);
  bool seen = false;
  router.run(std::move(inject), [&](proc_t dst, std::uint64_t tag, double v) {
    EXPECT_EQ(dst, 5u);
    EXPECT_EQ(tag, 1u);
    EXPECT_EQ(v, 2.0);
    seen = true;
  });
  EXPECT_TRUE(seen);
  EXPECT_DOUBLE_EQ(cube.clock().now_us(), 0.0);
}

TEST(Router, OnePortSerializesCongestion) {
  Cube cube(2, CostParams::unit());
  // 10 packets from the same source: at most one leaves per cycle.
  std::vector<std::vector<Packet>> inject(cube.procs());
  for (int t = 0; t < 10; ++t)
    inject[0].push_back(Packet{1, std::uint64_t(t), 1.0});
  NaiveRouter router(cube);
  const std::uint64_t cycles =
      router.run(std::move(inject), [](proc_t, std::uint64_t, double) {});
  EXPECT_EQ(cycles, 10u);
}

TEST(SimClock, ResetClearsEverything) {
  SimClock clock(CostParams::unit());
  clock.charge_comm_step(5, 2, 10);
  clock.charge_compute_step(7, 7);
  clock.charge_router_cycle(3);
  EXPECT_GT(clock.now_us(), 0.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now_us(), 0.0);
  EXPECT_EQ(clock.stats().comm_steps, 0u);
  EXPECT_EQ(clock.stats().flops_charged, 0u);
  EXPECT_EQ(clock.stats().router_hops, 0u);
}

TEST(SimClock, TimerMeasuresWindows) {
  SimClock clock(CostParams::unit());
  clock.charge_comm_step(5, 1, 5);
  SimTimer timer(clock);
  clock.charge_compute_step(7, 7);
  EXPECT_DOUBLE_EQ(timer.elapsed_us(), 7.0);
}

}  // namespace
}  // namespace vmp
