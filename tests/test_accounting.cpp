// Tests of the simulated-time accounting itself: decomposition identities,
// model-driven algorithm auto-selection, threading invariance for whole
// algorithms, and the charging contracts the documentation promises.
#include <gtest/gtest.h>

#include <memory>

#include "algorithms/gauss.hpp"
#include "algorithms/simplex.hpp"
#include "comm/collectives.hpp"
#include "core/primitives.hpp"
#include "core/vector_ops.hpp"
#include "embed/realign.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

TEST(Accounting, TimeDecomposesIntoCommComputeRouterHost) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistMatrix<double> A(grid, 32, 32, MatrixLayout::cyclic());
  A.load(random_matrix(32, 32, 1));
  const std::vector<double> b = random_vector(32, 2);
  (void)gauss_solve(A, b);
  cube.clock().charge_us(3.5);  // explicit front-end latency
  const SimClock& c = cube.clock();
  EXPECT_NEAR(c.now_us(),
              c.comm_us() + c.compute_us() + c.router_us() + c.host_us(),
              1e-9 * c.now_us());
  EXPECT_GT(c.comm_us(), 0.0);
  EXPECT_GT(c.compute_us(), 0.0);
  EXPECT_EQ(c.router_us(), 0.0) << "optimized path never uses the router";
  EXPECT_DOUBLE_EQ(c.host_us(), 3.5);
}

TEST(Accounting, ChargeUsLandsInTheHostBucketNotElsewhere) {
  Cube cube(2, CostParams::unit());
  SimClock& c = cube.clock();
  c.charge_us(7.25);
  EXPECT_DOUBLE_EQ(c.now_us(), 7.25);
  EXPECT_DOUBLE_EQ(c.host_us(), 7.25);
  EXPECT_DOUBLE_EQ(c.comm_us(), 0.0);
  EXPECT_DOUBLE_EQ(c.compute_us(), 0.0);
  EXPECT_DOUBLE_EQ(c.router_us(), 0.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.host_us(), 0.0);
  EXPECT_DOUBLE_EQ(c.now_us(), 0.0);
}

TEST(Accounting, SimTimerReportsPerScopeDeltas) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistMatrix<double> A(grid, 32, 32);
  A.load(random_matrix(32, 32, 14));
  (void)reduce_rows(A, Plus<double>{});  // pre-existing charges

  const SimTimer timer(cube.clock());
  const SimStats before = cube.clock().stats();
  (void)reduce_rows(A, Plus<double>{});
  const SimSpan span = timer.span();
  EXPECT_GT(span.us, 0.0);
  EXPECT_NEAR(span.us,
              span.comm_us + span.compute_us + span.router_us + span.host_us,
              1e-9 * span.us);
  const SimStats delta = timer.stats_delta();
  EXPECT_EQ(delta.comm_steps,
            cube.clock().stats().comm_steps - before.comm_steps);
  EXPECT_GT(delta.messages, 0u);
  EXPECT_GT(delta.flops_charged, 0u);
  EXPECT_EQ(delta.router_hops, 0u);
}

TEST(Accounting, SimulatedTimeIsMonotone) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistMatrix<double> A(grid, 16, 16);
  A.load(random_matrix(16, 16, 3));
  double last = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    (void)reduce_rows(A, Plus<double>{});
    EXPECT_GT(cube.clock().now_us(), last);
    last = cube.clock().now_us();
  }
}

TEST(Accounting, FreeCommMakesCollectivesArithmeticOnly) {
  Cube cube(4, CostParams::free_comm());
  Grid grid(cube, 2, 2);
  DistMatrix<double> A(grid, 32, 32);
  A.load(random_matrix(32, 32, 4));
  (void)reduce_rows(A, Plus<double>{});
  EXPECT_EQ(cube.clock().comm_us(), 0.0);
  EXPECT_GT(cube.clock().compute_us(), 0.0);
}

// ---------------------------------------------------------------------------
// Model-driven auto-selection never loses to either fixed variant.
// ---------------------------------------------------------------------------

class AutoSelect : public ::testing::TestWithParam<
                       std::tuple<int, std::size_t, int>> {
 protected:
  static CostParams preset(int which) {
    return which == 0 ? CostParams::cm2() : CostParams::ipsc();
  }
  // The *_auto selectors evaluate the CUBE closed forms; pin the
  // hypercube preset so the CI mesh leg can't skew the measured sides.
  static Cube::Options pin_hypercube() {
    Cube::Options o;
    o.topology = TopologyKind::Hypercube;
    return o;
  }
};

TEST_P(AutoSelect, BroadcastAutoMatchesTheCheaperVariant) {
  const auto [d, n, which] = GetParam();
  Cube cube(d, preset(which), pin_hypercube());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  const auto run = [&](auto fn) {
    DistBuffer<double> buf(cube);
    buf.assign(0, random_vector(n, 5));
    cube.clock().reset();
    fn(buf);
    return cube.clock().now_us();
  };
  const double t_bin = run([&](auto& b) { broadcast(cube, b, sc, 0); });
  const double t_sag = run([&](auto& b) {
    broadcast_sag(cube, b, sc, 0, [n](proc_t) { return n; });
  });
  const double t_auto = run([&](auto& b) {
    broadcast_auto(cube, b, sc, 0, [n](proc_t) { return n; });
  });
  EXPECT_LE(t_auto, std::min(t_bin, t_sag) + 1e-9)
      << "auto must pick the cheaper algorithm (bin=" << t_bin
      << " sag=" << t_sag << ")";
}

TEST_P(AutoSelect, AllreduceAutoMatchesTheCheaperVariant) {
  const auto [d, n, which] = GetParam();
  Cube cube(d, preset(which), pin_hypercube());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  const auto run = [&](auto fn) {
    DistBuffer<double> buf(cube);
    cube.each_proc([&](proc_t q) { buf.assign(q, random_vector(n, q)); });
    cube.clock().reset();
    fn(buf);
    return cube.clock().now_us();
  };
  const double t_rd =
      run([&](auto& b) { allreduce(cube, b, sc, Plus<double>{}); });
  const double t_rsag =
      run([&](auto& b) { allreduce_rsag(cube, b, sc, Plus<double>{}); });
  const double t_auto =
      run([&](auto& b) { allreduce_auto(cube, b, sc, Plus<double>{}); });
  EXPECT_LE(t_auto, std::min(t_rd, t_rsag) + 1e-9)
      << "rd=" << t_rd << " rsag=" << t_rsag;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AutoSelect,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values<std::size_t>(1, 8, 64, 1024, 8192),
                       ::testing::Values(0, 1)));

// ---------------------------------------------------------------------------
// Host threading changes neither results nor simulated time, even for
// whole applications.
// ---------------------------------------------------------------------------

TEST(Threading, GaussianEliminationIsThreadInvariant) {
  const std::size_t n = 24;
  const HostMatrix H = diag_dominant_matrix(n, 6);
  const std::vector<double> b = random_vector(n, 7);
  const auto run = [&](unsigned threads) {
    Cube cube(4, CostParams::cm2(), Cube::Options{threads});
    Grid grid(cube, 2, 2);
    DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
    A.load(H.data());
    const std::vector<double> x = gauss_solve(A, b);
    return std::pair{x, cube.clock().now_us()};
  };
  const auto [x1, t1] = run(1);
  const auto [x3, t3] = run(3);
  EXPECT_EQ(x1, x3);
  EXPECT_DOUBLE_EQ(t1, t3);
}

TEST(Threading, SimplexIsThreadInvariant) {
  const LpProblem lp = random_feasible_lp(12, 9, 8);
  const auto run = [&](unsigned threads) {
    Cube cube(4, CostParams::cm2(), Cube::Options{threads});
    Grid grid(cube, 2, 2);
    const LpSolution s = simplex_solve(grid, lp);
    return std::tuple{s.status, s.objective, s.iterations,
                      cube.clock().now_us()};
  };
  EXPECT_EQ(run(1), run(4));
}

// ---------------------------------------------------------------------------
// Charging contracts.
// ---------------------------------------------------------------------------

TEST(Charging, HostIoIsFree) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistMatrix<double> A(grid, 16, 16);
  A.load(random_matrix(16, 16, 9));
  (void)A.to_host();
  (void)A.at(3, 3);
  DistVector<double> v(grid, 16, Align::Cols);
  v.load(random_vector(16, 10));
  (void)v.to_host();
  EXPECT_EQ(cube.clock().now_us(), 0.0);
}

TEST(Charging, RealignmentIsNeverFreeAcrossEmbeddings) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistVector<double> v(grid, 20, Align::Linear);
  v.load(random_vector(20, 11));
  const double t0 = cube.clock().now_us();
  const DistVector<double> c = realign(v, Align::Cols);
  EXPECT_GT(cube.clock().now_us(), t0);
  const double t1 = cube.clock().now_us();
  (void)realign(c, Align::Cols);  // same embedding: free copy
  EXPECT_EQ(cube.clock().now_us(), t1);
}

TEST(Charging, FetchAndStoreAreOneMessageEach) {
  Cube cube(4, CostParams::unit());
  Grid grid(cube, 2, 2);
  DistVector<double> v(grid, 8, Align::Cols);
  v.load(random_vector(8, 12));
  (void)vec_fetch(v, 3);
  EXPECT_DOUBLE_EQ(cube.clock().now_us(), 2.0);  // τ + 1·t_c
  vec_store(v, 3, 1.0);
  EXPECT_DOUBLE_EQ(cube.clock().now_us(), 4.0);
}

}  // namespace
}  // namespace vmp
