// Tests of the observability layer: region attribution (self vs inclusive
// profiles), conservation against the global clock, thread invariance,
// event-log / Chrome-trace export, and the reports the benchmarks embed.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "algorithms/gauss.hpp"
#include "algorithms/matvec.hpp"
#include "algorithms/simplex.hpp"
#include "core/naive.hpp"
#include "core/primitives.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

// Sum one numeric member over every self profile, "" included.
double sum_self(const Tracer& tr, double RegionProfile::* field) {
  double s = 0.0;
  for (const auto& [path, prof] : tr.self_profiles()) s += prof.*field;
  return s;
}

// ---------------------------------------------------------------------------
// Attribution basics on hand-built charges.
// ---------------------------------------------------------------------------

TEST(Tracer, ChargesGoToTheInnermostOpenRegion) {
  SimClock clock(CostParams::unit());  // τ = 1, t_c = 1, t_a = 1
  {
    TraceRegion outer(clock, "outer");
    clock.charge_compute_step(2, 2);  // outer self: 2 µs compute
    {
      TraceRegion inner(clock, "inner");
      clock.charge_comm_step(3, 1, 3);  // inner self: τ + 3 = 4 µs comm
    }
    clock.charge_compute_step(5, 5);  // outer self again
  }
  clock.charge_us(1.0);  // outside any region → ""

  const auto& self = clock.tracer().self_profiles();
  ASSERT_TRUE(self.contains("outer"));
  ASSERT_TRUE(self.contains("outer/inner"));
  ASSERT_TRUE(self.contains(""));
  EXPECT_DOUBLE_EQ(self.at("outer").compute_us, 7.0);
  EXPECT_DOUBLE_EQ(self.at("outer").comm_us, 0.0);
  EXPECT_DOUBLE_EQ(self.at("outer/inner").comm_us, 4.0);
  EXPECT_EQ(self.at("outer/inner").comm_steps, 1u);
  EXPECT_EQ(self.at("outer/inner").messages, 1u);
  EXPECT_DOUBLE_EQ(self.at("").host_us, 1.0);

  const auto inc = clock.tracer().inclusive_profiles();
  EXPECT_DOUBLE_EQ(inc.at("outer").total_us(), 11.0);
  EXPECT_DOUBLE_EQ(inc.at("outer/inner").total_us(), 4.0);
}

TEST(Tracer, NestedRegionSelfProfilesSumToTheParentInclusiveTotal) {
  SimClock clock(CostParams::unit());
  {
    TraceRegion a(clock, "a");
    clock.charge_compute_step(1, 1);
    {
      TraceRegion b(clock, "b");
      clock.charge_compute_step(10, 10);
      {
        TraceRegion c(clock, "c");
        clock.charge_comm_step(4, 2, 8);
      }
    }
    {
      TraceRegion b2(clock, "b2");
      clock.charge_router_cycle(3);
    }
  }
  const auto& self = clock.tracer().self_profiles();
  const auto inc = clock.tracer().inclusive_profiles();

  RegionProfile manual = self.at("a");
  manual.add(self.at("a/b"));
  manual.add(self.at("a/b/c"));
  manual.add(self.at("a/b2"));
  EXPECT_EQ(inc.at("a"), manual);
  // A parent's inclusive == self + Σ children's inclusive.
  EXPECT_DOUBLE_EQ(inc.at("a/b").total_us(),
                   self.at("a/b").total_us() + inc.at("a/b/c").total_us());
}

TEST(Tracer, DimensionHistogramTracksExchangedElements) {
  // Per-dimension histogram golden: pin the hypercube preset (on a mesh
  // the histogram is per grid axis, not per cube dim).
  Cube::Options opts;
  opts.topology = TopologyKind::Hypercube;
  Cube cube(3, CostParams::unit(), opts);
  {
    TraceRegion r(cube, "xch");
    DistBuffer<double> buf(cube);
    cube.each_proc([&](proc_t q) { buf.assign(q, 4, double(q)); });
    for (int d = 0; d < 3; ++d) {
      cube.exchange<double>(
          d, [&](proc_t q) { return std::span<const double>(buf.tile(q)); },
          [&](proc_t, std::span<const double>) {});
    }
  }
  const RegionProfile& p = cube.clock().tracer().self_profiles().at("xch");
  ASSERT_GE(p.dim_elements.size(), 3u);
  for (int d = 0; d < 3; ++d)
    EXPECT_EQ(p.dim_elements[static_cast<std::size_t>(d)], 8u * 4u)
        << "dimension " << d;
  EXPECT_EQ(p.mixed_dim_elements, 0u);
}

// ---------------------------------------------------------------------------
// Conservation: Σ self profiles == the global clock, to 1e-9 relative.
// ---------------------------------------------------------------------------

void expect_conservation(const SimClock& c) {
  const Tracer& tr = c.tracer();
  const double total = sum_self(tr, &RegionProfile::comm_us) +
                       sum_self(tr, &RegionProfile::compute_us) +
                       sum_self(tr, &RegionProfile::router_us) +
                       sum_self(tr, &RegionProfile::host_us);
  ASSERT_GT(c.now_us(), 0.0);
  EXPECT_NEAR(total, c.now_us(), 1e-9 * c.now_us());
  EXPECT_NEAR(sum_self(tr, &RegionProfile::comm_us), c.comm_us(),
              1e-9 * c.now_us());
  EXPECT_NEAR(sum_self(tr, &RegionProfile::compute_us), c.compute_us(),
              1e-9 * c.now_us());
  EXPECT_NEAR(sum_self(tr, &RegionProfile::router_us), c.router_us(),
              1e-9 * c.now_us());
}

TEST(TracerConservation, MatvecRegionsAccountForEveryMicrosecond) {
  Cube cube(4, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, 48, 48);
  A.load(random_matrix(48, 48, 21));
  DistVector<double> x(grid, 48, Align::Cols);
  x.load(random_vector(48, 22));
  cube.clock().reset();
  (void)matvec(A, x);
  expect_conservation(cube.clock());
  // Everything matvec charges must sit under the matvec region.
  const auto inc = cube.clock().tracer().inclusive_profiles();
  ASSERT_TRUE(inc.contains("matvec"));
  EXPECT_NEAR(inc.at("matvec").total_us(), cube.clock().now_us(),
              1e-9 * cube.clock().now_us());
}

TEST(TracerConservation, GaussRegionsAccountForEveryMicrosecond) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistMatrix<double> A(grid, 24, 24, MatrixLayout::cyclic());
  A.load(diag_dominant_matrix(24, 23).data());
  cube.clock().reset();
  (void)lu_factor(A);
  expect_conservation(cube.clock());
  const auto inc = cube.clock().tracer().inclusive_profiles();
  ASSERT_TRUE(inc.contains("lu_factor"));
  ASSERT_TRUE(inc.contains("lu_factor/pivot_search"));
  ASSERT_TRUE(inc.contains("lu_factor/update"));
  // The two phases partition the factorization.
  EXPECT_NEAR(inc.at("lu_factor/pivot_search").total_us() +
                  inc.at("lu_factor/update").total_us(),
              inc.at("lu_factor").total_us(),
              1e-9 * inc.at("lu_factor").total_us());
}

TEST(TracerConservation, NaiveRouterTimeIsAttributedToTheRouterBucket) {
  Cube cube(4, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistVector<double> v(grid, 32, Align::Linear);
  v.load(random_vector(32, 24));
  cube.clock().reset();
  (void)naive_distribute_rows(v, 32);
  expect_conservation(cube.clock());
  const auto inc = cube.clock().tracer().inclusive_profiles();
  const RegionProfile& naive = inc.at("naive_distribute_rows");
  EXPECT_GT(naive.router_us, 0.0);
  EXPECT_GT(naive.router_hops, 0u);
  EXPECT_DOUBLE_EQ(naive.comm_us, 0.0)
      << "the naive path communicates only through the router";
}

// The acceptance-style check for the naive-vs-optimized benchmark: both
// sides' region buckets sum to the global clock totals.
TEST(TracerConservation, NaiveVsOptimizedBucketsMatchGlobalTotals) {
  Cube cube(4, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, 32, 32);
  A.load(random_matrix(32, 32, 25));

  cube.clock().reset();
  (void)naive_reduce_cols_sum(A);
  expect_conservation(cube.clock());
  const double naive_us = cube.clock().now_us();
  EXPECT_GT(cube.clock().router_us(), 0.0);

  cube.clock().reset();
  (void)reduce_cols(A, Plus<double>{});
  expect_conservation(cube.clock());
  EXPECT_EQ(cube.clock().router_us(), 0.0);
  EXPECT_GT(cube.clock().comm_us(), 0.0);
  EXPECT_GT(naive_us, cube.clock().now_us());
}

TEST(TracerConservation, SimplexRegionsAccountForEveryMicrosecond) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const LpProblem lp = random_feasible_lp(10, 7, 26);
  cube.clock().reset();
  (void)simplex_solve(grid, lp);
  expect_conservation(cube.clock());
  const auto inc = cube.clock().tracer().inclusive_profiles();
  ASSERT_TRUE(inc.contains("simplex"));
  EXPECT_TRUE(inc.contains("simplex/entering"));
  EXPECT_TRUE(inc.contains("simplex/leaving"));
  EXPECT_TRUE(inc.contains("simplex/pivot"));
}

// ---------------------------------------------------------------------------
// Thread invariance: attribution is bit-identical for any host threading.
// ---------------------------------------------------------------------------

TEST(TracerThreading, AttributionIsIdenticalAcrossThreadCounts) {
  const std::size_t n = 24;
  const HostMatrix H = diag_dominant_matrix(n, 27);
  const auto run = [&](unsigned threads) {
    Cube cube(4, CostParams::cm2(), Cube::Options{threads});
    Grid grid(cube, 2, 2);
    DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
    A.load(H.data());
    cube.clock().reset();
    (void)lu_factor(A);
    return cube.clock().tracer().self_profiles();
  };
  const auto p1 = run(1);
  const auto p4 = run(4);
  ASSERT_EQ(p1.size(), p4.size());
  for (const auto& [path, prof] : p1) {
    ASSERT_TRUE(p4.contains(path)) << path;
    EXPECT_EQ(prof, p4.at(path)) << path;
  }
}

// ---------------------------------------------------------------------------
// Event log and Chrome trace export.
// ---------------------------------------------------------------------------

TEST(TraceExport, EventLogIsOptInAndCoversEveryCharge) {
  Cube cube(3, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, 16, 16);
  A.load(random_matrix(16, 16, 28));
  cube.clock().reset();
  (void)reduce_rows(A, Plus<double>{});
  EXPECT_TRUE(cube.clock().tracer().events().empty()) << "off by default";

  cube.clock().reset();
  cube.clock().tracer().set_recording(true);
  (void)reduce_rows(A, Plus<double>{});
  const auto& events = cube.clock().tracer().events();
  ASSERT_FALSE(events.empty());
  double covered = 0.0;
  for (const TraceEvent& e : events) covered += e.dur_us;
  EXPECT_NEAR(covered, cube.clock().now_us(),
              1e-9 * cube.clock().now_us());
  EXPECT_FALSE(cube.clock().tracer().spans().empty());
}

TEST(TraceExport, ChromeTraceTimestampsAreMonotone) {
  Cube cube(3, CostParams::cm2());
  Grid grid(cube, 2, 1);
  DistMatrix<double> A(grid, 20, 20, MatrixLayout::cyclic());
  A.load(diag_dominant_matrix(20, 29).data());
  cube.clock().reset();
  cube.clock().tracer().set_recording(true);
  (void)lu_factor(A);
  const std::string doc = chrome_trace_json(cube.clock());

  // Structural smoke checks without a JSON parser: the document must name
  // the trace_event container and contain complete events.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"pivot_search\""), std::string::npos);

  // "ts" values appear in emission order and must never decrease.
  double last = -1.0;
  std::size_t count = 0;
  for (std::size_t pos = doc.find("\"ts\":"); pos != std::string::npos;
       pos = doc.find("\"ts\":", pos + 5)) {
    const double ts = std::strtod(doc.c_str() + pos + 5, nullptr);
    EXPECT_GE(ts, last) << "event " << count;
    last = ts;
    ++count;
  }
  EXPECT_GT(count, 10u);
}

TEST(TraceExport, RecordingSurvivesResetAndBeginsAtZero) {
  Cube cube(2, CostParams::unit());
  cube.clock().tracer().set_recording(true);
  cube.clock().charge_compute_step(5, 5);
  cube.clock().reset();
  EXPECT_TRUE(cube.clock().tracer().recording());
  EXPECT_TRUE(cube.clock().tracer().events().empty());
  cube.clock().charge_compute_step(3, 3);
  ASSERT_EQ(cube.clock().tracer().events().size(), 1u);
  EXPECT_DOUBLE_EQ(cube.clock().tracer().events()[0].ts_us, 0.0);
}

// ---------------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------------

TEST(Report, ProfileJsonCarriesSchemaTotalsAndRegions) {
  Cube cube(3, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, 16, 16);
  A.load(random_matrix(16, 16, 30));
  cube.clock().reset();
  (void)reduce_rows(A, Plus<double>{});
  const std::string doc = profile_to_json(cube.clock());
  EXPECT_NE(doc.find("\"schema\":\"vmp-profile-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"cost_model\""), std::string::npos);
  EXPECT_NE(doc.find("\"totals\""), std::string::npos);
  EXPECT_NE(doc.find("\"reduce_rows\""), std::string::npos);
  EXPECT_NE(doc.find("\"self\""), std::string::npos);
  EXPECT_NE(doc.find("\"total\""), std::string::npos);
}

TEST(Report, ProfileTableListsRegionsWithTheirShare) {
  Cube cube(3, CostParams::cm2());
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, 16, 16);
  A.load(random_matrix(16, 16, 31));
  cube.clock().reset();
  (void)reduce_rows(A, Plus<double>{});
  const std::string table = profile_to_table(cube.clock());
  EXPECT_NE(table.find("reduce_rows"), std::string::npos);
  EXPECT_NE(table.find("comm"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
}

}  // namespace
}  // namespace vmp
