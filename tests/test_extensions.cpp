// Tests: matrix transposition, primitive-built matrix multiply, the
// conjugate-gradient solver, and the fully-naive Gaussian elimination.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "algorithms/cg.hpp"
#include "algorithms/gauss.hpp"
#include "algorithms/matmul.hpp"
#include "algorithms/serial/lu.hpp"
#include "core/transpose.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

// ---------------------------------------------------------------------------
// transpose
// ---------------------------------------------------------------------------

struct TCase {
  int gr, gc;
  std::size_t nrows, ncols;
  MatrixLayout layout;
};

class TransposeSweep : public ::testing::TestWithParam<TCase> {};

TEST_P(TransposeSweep, MatchesHostTranspose) {
  const TCase c = GetParam();
  Cube cube(c.gr + c.gc, CostParams::cm2());
  Grid grid(cube, c.gr, c.gc);
  const std::vector<double> host = random_matrix(c.nrows, c.ncols, 90);
  DistMatrix<double> A(grid, c.nrows, c.ncols, c.layout);
  A.load(host);
  const DistMatrix<double> B = transpose(A);
  EXPECT_EQ(B.nrows(), c.ncols);
  EXPECT_EQ(B.ncols(), c.nrows);
  EXPECT_EQ(B.layout().rows, c.layout.cols);
  EXPECT_EQ(B.layout().cols, c.layout.rows);
  const std::vector<double> got = B.to_host();
  for (std::size_t i = 0; i < c.nrows; ++i)
    for (std::size_t j = 0; j < c.ncols; ++j)
      EXPECT_EQ(got[j * c.nrows + i], host[i * c.ncols + j]);
}

TEST_P(TransposeSweep, DoubleTransposeIsIdentity) {
  const TCase c = GetParam();
  Cube cube(c.gr + c.gc, CostParams::cm2());
  Grid grid(cube, c.gr, c.gc);
  const std::vector<double> host = random_matrix(c.nrows, c.ncols, 91);
  DistMatrix<double> A(grid, c.nrows, c.ncols, c.layout);
  A.load(host);
  EXPECT_EQ(transpose(transpose(A)).to_host(), host);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransposeSweep,
    ::testing::Values(TCase{0, 0, 3, 5, MatrixLayout::blocked()},
                      TCase{1, 1, 8, 8, MatrixLayout::blocked()},
                      TCase{2, 2, 13, 17, MatrixLayout::blocked()},
                      TCase{2, 2, 13, 17, MatrixLayout::cyclic()},
                      TCase{3, 1, 9, 20, MatrixLayout::cyclic()},
                      TCase{1, 3, 20, 9,
                            MatrixLayout{Part::Cyclic, Part::Block}},
                      TCase{2, 3, 1, 16, MatrixLayout::blocked()}));

// ---------------------------------------------------------------------------
// matmul
// ---------------------------------------------------------------------------

class MatmulSweep : public ::testing::TestWithParam<TCase> {};

TEST_P(MatmulSweep, MatchesHostGemm) {
  const TCase c = GetParam();
  Cube cube(c.gr + c.gc, CostParams::cm2());
  Grid grid(cube, c.gr, c.gc);
  const std::size_t n = c.nrows, k = c.ncols, m = c.nrows + 2;
  const std::vector<double> ha = random_matrix(n, k, 92);
  const std::vector<double> hb = random_matrix(k, m, 93);
  DistMatrix<double> A(grid, n, k, c.layout);
  DistMatrix<double> B(grid, k, m,
                       MatrixLayout{c.layout.cols, c.layout.rows});
  A.load(ha);
  B.load(hb);
  const DistMatrix<double> C = matmul(A, B);
  const std::vector<double> got = C.to_host();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) {
      double want = 0;
      for (std::size_t t = 0; t < k; ++t) want += ha[i * k + t] * hb[t * m + j];
      EXPECT_NEAR(got[i * m + j], want, 1e-11 * (1 + std::abs(want)));
    }
}

TEST_P(MatmulSweep, RejectsMismatchedInner) {
  const TCase c = GetParam();
  Cube cube(c.gr + c.gc, CostParams::cm2());
  Grid grid(cube, c.gr, c.gc);
  DistMatrix<double> A(grid, 4, 5, c.layout);
  DistMatrix<double> B(grid, 6, 4, c.layout);
  EXPECT_THROW((void)matmul(A, B), ContractError);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatmulSweep,
    ::testing::Values(TCase{0, 0, 4, 6, MatrixLayout::blocked()},
                      TCase{1, 1, 8, 8, MatrixLayout::blocked()},
                      TCase{2, 2, 12, 9, MatrixLayout::blocked()},
                      TCase{2, 2, 12, 9, MatrixLayout::cyclic()},
                      TCase{2, 1, 7, 11, MatrixLayout::cyclic()},
                      TCase{1, 2, 11, 7, MatrixLayout::blocked()}));

// ---------------------------------------------------------------------------
// conjugate gradient
// ---------------------------------------------------------------------------

class CgSweep : public ::testing::TestWithParam<
                    std::tuple<int, int, std::size_t, MatrixLayout>> {};

TEST_P(CgSweep, SolvesSpdSystems) {
  const auto [gr, gc, n, layout] = GetParam();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  const HostMatrix H = spd_matrix(n, 94);
  const std::vector<double> b = random_vector(n, 95);
  DistMatrix<double> A(grid, n, n, layout);
  A.load(H.data());
  const CgResult res = conjugate_gradient(A, b, {1e-11, 0});
  ASSERT_TRUE(res.converged) << "n=" << n << " iters=" << res.iterations;
  double resid = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += H(i, j) * res.x[j];
    resid = std::max(resid, std::abs(s - b[i]));
  }
  EXPECT_LT(resid, 1e-7);
  // CG terminates in at most n steps in exact arithmetic.
  EXPECT_LE(res.iterations, n);
}

TEST_P(CgSweep, AgreesWithDirectSolve) {
  const auto [gr, gc, n, layout] = GetParam();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  HostMatrix H = spd_matrix(n, 96);
  const std::vector<double> b = random_vector(n, 97);
  DistMatrix<double> A(grid, n, n, layout);
  A.load(H.data());
  const CgResult res = conjugate_gradient(A, b, {1e-12, 0});
  const std::vector<double> direct = serial::gauss_solve(H, b);
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.x[i], direct[i], 1e-6 * (1 + std::abs(direct[i])));
}

TEST(Cg, ZeroRhsReturnsZero) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistMatrix<double> A(grid, 6, 6);
  A.load(spd_matrix(6, 98).data());
  const std::vector<double> b(6, 0.0);
  const CgResult res = conjugate_gradient(A, b);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0u);
  for (double x : res.x) EXPECT_EQ(x, 0.0);
}

TEST(Cg, IndefiniteMatrixRejected) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  const std::size_t n = 4;
  std::vector<double> host(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) host[i * n + i] = -1.0;
  DistMatrix<double> A(grid, n, n);
  A.load(host);
  const std::vector<double> b(n, 1.0);
  EXPECT_THROW((void)conjugate_gradient(A, b), ContractError);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CgSweep,
    ::testing::Values(
        std::tuple{0, 0, 12ul, MatrixLayout::blocked()},
        std::tuple{1, 1, 16ul, MatrixLayout::blocked()},
        std::tuple{2, 2, 24ul, MatrixLayout::blocked()},
        std::tuple{2, 2, 25ul, MatrixLayout::cyclic()},
        std::tuple{3, 1, 18ul, MatrixLayout::blocked()},
        std::tuple{1, 3, 18ul, MatrixLayout::cyclic()}));

// ---------------------------------------------------------------------------
// naive Gaussian elimination
// ---------------------------------------------------------------------------

TEST(NaiveGauss, FactorsExactlyLikeThePrimitiveVersion) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 12;
  const HostMatrix H = diag_dominant_matrix(n, 99);

  DistMatrix<double> A1(grid, n, n, MatrixLayout::cyclic());
  A1.load(H.data());
  const DistLuResult fast = lu_factor(A1);

  DistMatrix<double> A2(grid, n, n, MatrixLayout::cyclic());
  A2.load(H.data());
  const DistLuResult naive = lu_factor_naive(A2);

  ASSERT_FALSE(fast.singular);
  ASSERT_FALSE(naive.singular);
  EXPECT_EQ(naive.perm, fast.perm);
  const std::vector<double> f = A1.to_host(), nv = A2.to_host();
  for (std::size_t t = 0; t < f.size(); ++t)
    EXPECT_NEAR(nv[t], f[t], 1e-12 * (1 + std::abs(f[t]))) << "t=" << t;
}

TEST(NaiveGauss, SolvesCorrectly) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 10;
  const HostMatrix H = diag_dominant_matrix(n, 100);
  const std::vector<double> b = random_vector(n, 101);
  DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
  A.load(H.data());
  const DistLuResult lu = lu_factor_naive(A);
  ASSERT_FALSE(lu.singular);
  const std::vector<double> x = lu_solve(A, lu, b);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += H(i, j) * x[j];
    EXPECT_NEAR(s, b[i], 1e-9);
  }
}

TEST(NaiveGauss, MuchSlowerThanPrimitives) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 16;
  const HostMatrix H = diag_dominant_matrix(n, 102);

  DistMatrix<double> A1(grid, n, n, MatrixLayout::cyclic());
  A1.load(H.data());
  cube.clock().reset();
  (void)lu_factor(A1);
  const double t_fast = cube.clock().now_us();

  DistMatrix<double> A2(grid, n, n, MatrixLayout::cyclic());
  A2.load(H.data());
  cube.clock().reset();
  (void)lu_factor_naive(A2);
  const double t_naive = cube.clock().now_us();

  EXPECT_GT(t_naive / t_fast, 8.0)
      << "naive=" << t_naive << " fast=" << t_fast;
}

}  // namespace
}  // namespace vmp
