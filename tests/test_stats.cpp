// Exact traffic accounting: the collectives must move precisely the
// message and element counts their cost analyses claim — this pins the
// simulated-time tables of EXPERIMENTS.md to the documented formulas.
#include <gtest/gtest.h>

#include "comm/allport.hpp"
#include "comm/collectives.hpp"
#include "comm/router.hpp"
#include "embed/dist_vector.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

struct Fx {
  explicit Fx(int d) : cube(d, CostParams::unit()), sc(SubcubeSet::contiguous(0, d)) {}
  Cube cube;
  SubcubeSet sc;
};

TEST(Stats, BinomialBroadcastMovesPMinus1Messages) {
  for (int d : {1, 3, 5, 7}) {
    Fx f(d);
    const std::size_t n = 10;
    DistBuffer<double> buf(f.cube);
    buf.assign(0, random_vector(n, 1));
    broadcast(f.cube, buf, f.sc, 0);
    const SimStats& st = f.cube.clock().stats();
    EXPECT_EQ(st.comm_steps, static_cast<std::uint64_t>(d));
    EXPECT_EQ(st.messages, f.cube.procs() - 1u);
    EXPECT_EQ(st.elements_moved, (f.cube.procs() - 1u) * n);
    // Every round carries the full payload: serial elements = d·n.
    EXPECT_EQ(st.elements_serial, static_cast<std::uint64_t>(d) * n);
  }
}

TEST(Stats, AllreduceDoublingMovesKPMessages) {
  for (int d : {1, 3, 5}) {
    Fx f(d);
    const std::size_t n = 6;
    DistBuffer<double> buf(f.cube);
    f.cube.each_proc([&](proc_t q) { buf.assign(q, random_vector(n, q)); });
    allreduce(f.cube, buf, f.sc, Plus<double>{});
    const SimStats& st = f.cube.clock().stats();
    EXPECT_EQ(st.comm_steps, static_cast<std::uint64_t>(d));
    EXPECT_EQ(st.messages, static_cast<std::uint64_t>(d) * f.cube.procs());
    EXPECT_EQ(st.elements_serial, static_cast<std::uint64_t>(d) * n);
  }
}

TEST(Stats, ReduceScatterMovesHalvingVolumes) {
  // Per round the exchanged halves shrink: n/2, n/4, … — total per proc
  // n·(P-1)/P, total elements = P times that.
  const int d = 4;
  Fx f(d);
  const std::size_t n = 32;  // divisible by P = 16
  DistBuffer<double> buf(f.cube);
  f.cube.each_proc([&](proc_t q) { buf.assign(q, random_vector(n, q)); });
  reduce_scatter(f.cube, buf, f.sc, Plus<double>{});
  const SimStats& st = f.cube.clock().stats();
  EXPECT_EQ(st.comm_steps, 4u);
  EXPECT_EQ(st.elements_serial, 16u + 8u + 4u + 2u);  // n/2 + n/4 + …
  EXPECT_EQ(st.elements_moved, f.cube.procs() * (16u + 8u + 4u + 2u));
}

TEST(Stats, EsbtUsesAllPortsEachRound) {
  const int d = 4;
  Fx f(d);
  const std::size_t n = 64;  // 4 segments of 16
  DistBuffer<double> buf(f.cube);
  buf.assign(0, random_vector(n, 2));
  broadcast_esbt(f.cube, buf, f.sc, 0, [n](proc_t) { return n; });
  const SimStats& st = f.cube.clock().stats();
  EXPECT_EQ(st.comm_steps, 4u);
  // Each round is paced by one segment: serial elements = d·(n/d) = n.
  EXPECT_EQ(st.elements_serial, n);
  // Total volume: every tree delivers its segment P-1 times.
  EXPECT_EQ(st.elements_moved, (f.cube.procs() - 1u) * n);
}

TEST(Stats, RouterHopCountIsSumOfHammingDistances) {
  // Hop == Hamming distance only on the cube wiring; pin the preset so
  // the CI mesh leg (where hops are grid distances) skips this golden.
  Cube::Options opts;
  opts.topology = TopologyKind::Hypercube;
  Cube cube(4, CostParams::unit(), opts);
  std::vector<std::vector<Packet>> inject(cube.procs());
  std::uint64_t want_hops = 0;
  SplitMix64 rng(3);
  for (proc_t q = 0; q < cube.procs(); ++q)
    for (int t = 0; t < 3; ++t) {
      const proc_t dst = static_cast<proc_t>(rng.below(cube.procs()));
      inject[q].push_back(Packet{dst, 0, 1.0});
      want_hops += static_cast<std::uint64_t>(hamming_distance(q, dst));
    }
  NaiveRouter router(cube);
  router.run(std::move(inject), [](proc_t, std::uint64_t, double) {});
  EXPECT_EQ(cube.clock().stats().router_hops, want_hops);
}

TEST(Stats, DistributeAndInsertMoveNothing) {
  Cube cube(4, CostParams::unit());
  Grid grid(cube, 2, 2);
  DistVector<double> v(grid, 16, Align::Cols);
  v.load(random_vector(16, 4));
  // Only compute charges: messages stay zero.
  (void)grid;
  EXPECT_EQ(cube.clock().stats().messages, 0u);
}

TEST(Stats, ExchangeCountsMaxNotSum) {
  // One proc sends 10 elements, another 2: the round is paced by 10.
  Cube cube(1, CostParams::unit());
  DistBuffer<int> buf(cube);
  buf.assign(0, 10, 1);
  buf.assign(1, 2, 2);
  cube.exchange<int>(
      0, [&](proc_t q) { return std::span<const int>(buf.tile(q)); },
      [&](proc_t, std::span<const int>) {});
  EXPECT_DOUBLE_EQ(cube.clock().now_us(), 1.0 + 10.0);
  EXPECT_EQ(cube.clock().stats().elements_moved, 12u);
  EXPECT_EQ(cube.clock().stats().elements_serial, 10u);
}

}  // namespace
}  // namespace vmp
