// Tests: element shifts, permutations, and the PCR tridiagonal solver
// against the serial Thomas algorithm.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "algorithms/serial/tridiag.hpp"
#include "algorithms/tridiag.hpp"
#include "core/permute.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

class ShiftSweepV : public ::testing::TestWithParam<
                        std::tuple<int, int, std::size_t, Align,
                                   std::ptrdiff_t>> {};

TEST_P(ShiftSweepV, MatchesHostShift) {
  const auto [gr, gc, n, align, offset] = GetParam();
  Cube cube(gr + gc, CostParams::cm2());
  Grid grid(cube, gr, gc);
  const std::vector<double> host = random_vector(n, 401);
  DistVector<double> v(grid, n, align);
  v.load(host);
  const DistVector<double> w = vec_shift(v, offset, -7.0);
  const std::vector<double> got = w.to_host();
  for (std::size_t g = 0; g < n; ++g) {
    const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(g) + offset;
    const double want =
        (src >= 0 && src < static_cast<std::ptrdiff_t>(n))
            ? host[static_cast<std::size_t>(src)]
            : -7.0;
    EXPECT_EQ(got[g], want) << "g=" << g << " offset=" << offset;
  }
  EXPECT_TRUE(w.replicas_consistent());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShiftSweepV,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 2),
                       ::testing::Values<std::size_t>(1, 9, 32),
                       ::testing::Values(Align::Linear, Align::Cols,
                                         Align::Rows),
                       ::testing::Values<std::ptrdiff_t>(-5, -1, 0, 1, 3,
                                                         100)));

TEST(Permute, ScattersByPermutation) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 23;
  const std::vector<double> host = random_vector(n, 402);
  DistVector<double> v(grid, n, Align::Linear);
  v.load(host);
  // Reversal permutation.
  std::vector<std::size_t> perm(n);
  for (std::size_t g = 0; g < n; ++g) perm[g] = n - 1 - g;
  const DistVector<double> w = vec_permute(v, perm);
  const std::vector<double> got = w.to_host();
  for (std::size_t g = 0; g < n; ++g) EXPECT_EQ(got[n - 1 - g], host[g]);
}

TEST(Permute, RandomPermutationRoundTrips) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const std::size_t n = 40;
  const std::vector<double> host = random_vector(n, 403);
  DistVector<double> v(grid, n, Align::Cols);
  v.load(host);
  std::vector<std::size_t> perm(n), inv(n);
  std::iota(perm.begin(), perm.end(), 0u);
  SplitMix64 rng(404);
  for (std::size_t g = n; g-- > 1;)
    std::swap(perm[g], perm[rng.below(g + 1)]);
  for (std::size_t g = 0; g < n; ++g) inv[perm[g]] = g;
  const DistVector<double> w = vec_permute(v, perm);
  const DistVector<double> back = vec_permute(w, inv);
  EXPECT_EQ(back.to_host(), host);
}

TEST(Permute, NonBijectionRejected) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  DistVector<double> v(grid, 4, Align::Linear);
  const std::size_t bad[] = {0, 1, 1, 3};
  EXPECT_THROW((void)vec_permute(v, std::span<const std::size_t>(bad)),
               ContractError);
}

// ---------------------------------------------------------------------------
// Tridiagonal PCR
// ---------------------------------------------------------------------------

struct TriCase {
  int gr, gc;
  std::size_t n;
  std::uint64_t seed;
};

class TridiagSweep : public ::testing::TestWithParam<TriCase> {
 protected:
  void make_system(std::size_t n, std::uint64_t seed) {
    SplitMix64 rng(seed);
    a.assign(n, 0.0);
    b.assign(n, 0.0);
    c.assign(n, 0.0);
    d.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) a[i] = rng.uniform(-1.0, 1.0);
      if (i + 1 < n) c[i] = rng.uniform(-1.0, 1.0);
      b[i] = std::abs(a[i]) + std::abs(c[i]) + rng.uniform(1.0, 2.0);
      d[i] = rng.uniform(-1.0, 1.0);
    }
  }
  std::vector<double> a, b, c, d;
};

TEST_P(TridiagSweep, MatchesThomasAlgorithm) {
  const TriCase t = GetParam();
  make_system(t.n, t.seed);
  Cube cube(t.gr + t.gc, CostParams::cm2());
  Grid grid(cube, t.gr, t.gc);
  const std::vector<double> got = tridiag_solve_pcr(grid, a, b, c, d);
  const std::vector<double> want = serial::tridiag_solve(a, b, c, d);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < t.n; ++i)
    EXPECT_NEAR(got[i], want[i], 1e-9 * (1 + std::abs(want[i]))) << i;
}

TEST_P(TridiagSweep, ResidualIsSmall) {
  const TriCase t = GetParam();
  make_system(t.n, t.seed + 1);
  Cube cube(t.gr + t.gc, CostParams::cm2());
  Grid grid(cube, t.gr, t.gc);
  const std::vector<double> x = tridiag_solve_pcr(grid, a, b, c, d);
  for (std::size_t i = 0; i < t.n; ++i) {
    double s = b[i] * x[i];
    if (i > 0) s += a[i] * x[i - 1];
    if (i + 1 < t.n) s += c[i] * x[i + 1];
    EXPECT_NEAR(s, d[i], 1e-9) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TridiagSweep,
    ::testing::Values(TriCase{0, 0, 1, 1}, TriCase{0, 0, 7, 2},
                      TriCase{1, 1, 16, 3}, TriCase{2, 2, 16, 4},
                      TriCase{2, 2, 33, 5}, TriCase{3, 1, 64, 6},
                      TriCase{1, 3, 100, 7}, TriCase{3, 3, 128, 8}));

TEST(Tridiag, BadBoundaryRejected) {
  Cube cube(2, CostParams::cm2());
  Grid grid(cube, 1, 1);
  std::vector<double> a = {1.0, 1.0}, b = {2.0, 2.0}, c = {1.0, 0.0},
                      d = {1.0, 1.0};
  EXPECT_THROW((void)tridiag_solve_pcr(grid, a, b, c, d), ContractError);
}

TEST(Tridiag, ScalesWithProcessors) {
  const std::size_t n = 1024;
  std::vector<double> a(n, -1.0), b(n, 4.0), c(n, -1.0), d(n, 1.0);
  a[0] = c[n - 1] = 0.0;
  const auto run = [&](int dim) {
    Cube cube(dim, CostParams::cm2());
    Grid grid = Grid::square(cube);
    cube.clock().reset();
    (void)tridiag_solve_pcr(grid, a, b, c, d);
    return cube.clock().now_us();
  };
  EXPECT_LT(run(6), run(0));
}

}  // namespace
}  // namespace vmp
