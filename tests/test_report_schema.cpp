// Golden-schema tests for the two machine-readable report formats:
// "vmp-profile-v1" (profile_to_json) and "vmp-bench-v1" (bench harness
// documents).  Downstream tooling keys on exact field names, so adding,
// renaming or dropping a key must fail here first — update the goldens
// consciously, in the same change as the writer.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "../bench/harness.hpp"
#include "algorithms/spmv.hpp"
#include "core/primitives.hpp"
#include "embed/dist_sparse_matrix.hpp"
#include "obs/report.hpp"
#include "util/rng.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

// Pin VMP_SEED before main() runs: global_seed() latches on first call, so
// setting the environment from a file-scope initializer makes the override
// visible no matter which test runs first (ctest runs each in its own
// process; a direct ./test_report_schema run shares one).
const bool kSeedEnvPinned = [] {
  return setenv("VMP_SEED", "424242", /*overwrite=*/1) == 0;
}();

// --------------------------------------------------------------------------
// A deliberately tiny JSON reader — just enough to validate our own output
// (objects, arrays, strings with the escapes we emit, numbers, booleans).

struct Json {
  enum class Kind { Object, Array, String, Number, Bool, Null } kind;
  std::map<std::string, Json> object;
  std::vector<Json> array;
  std::string string;
  double number = 0.0;
  bool boolean = false;

  [[nodiscard]] std::set<std::string> keys() const {
    std::set<std::string> out;
    for (const auto& [k, v] : object) out.insert(k);
    return out;
  }
  [[nodiscard]] const Json& at(const std::string& k) const {
    const auto it = object.find(k);
    EXPECT_NE(it, object.end()) << "missing key \"" << k << "\"";
    static const Json null{Kind::Null, {}, {}, {}, 0.0, false};
    return it == object.end() ? null : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    const Json v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing garbage after JSON document";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    skip_ws();
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void expect(char c) {
    EXPECT_EQ(peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return boolean();
      default: return number();
    }
  }
  Json object() {
    Json v{Json::Kind::Object, {}, {}, {}, 0.0, false};
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      Json key = string_value();
      expect(':');
      v.object.emplace(key.string, value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }
  Json array() {
    Json v{Json::Kind::Array, {}, {}, {}, 0.0, false};
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
  Json string_value() {
    Json v{Json::Kind::String, {}, {}, {}, 0.0, false};
    expect('"');
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u': pos_ += 4; c = '?'; break;  // good enough for key checks
          default: c = esc;
        }
      }
      v.string += c;
    }
    expect('"');
    return v;
  }
  Json boolean() {
    Json v{Json::Kind::Bool, {}, {}, {}, 0.0, false};
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else {
      EXPECT_EQ(s_.compare(pos_, 5, "false"), 0) << "bad literal";
      pos_ += 5;
    }
    return v;
  }
  Json number() {
    Json v{Json::Kind::Number, {}, {}, {}, 0.0, false};
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    EXPECT_GT(pos_, start) << "expected a number at offset " << start;
    v.number = std::atof(s_.substr(start, pos_ - start).c_str());
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------------------
// Golden key sets.

const std::set<std::string> kProfileTopKeys = {"schema", "cost_model",
                                               "topology", "totals",
                                               "regions"};
const std::set<std::string> kTopologyKeys = {"name", "axes"};
const std::set<std::string> kCostModelKeys = {
    "name", "startup_us", "per_elem_us", "flop_us", "router_startup_us"};
const std::set<std::string> kTotalsKeys = {
    "now_us",          "comm_us",        "compute_us",
    "router_us",       "host_us",        "comm_steps",
    "messages",        "elements_moved", "elements_serial",
    "flops_charged",   "flops_total",    "router_packets",
    "router_hops",     "link_hops",      "fault_retries",
    "fault_chksum_fails", "fault_reroutes", "alloc_bytes",
    "pool_hits",       "pool_misses",    "slab_allocs",
    "slab_bytes"};
const std::set<std::string> kRegionProfileKeys = {
    "comm_us",        "compute_us",      "router_us",
    "host_us",        "total_us",        "comm_steps",
    "messages",       "elements_moved",  "elements_serial",
    "flops_charged",  "flops_total",     "router_cycles",
    "router_hops",    "dim_elements",    "mixed_dim_elements"};
const std::set<std::string> kBenchTopKeys = {
    "schema", "name",   "quick",      "trials",  "warmup",   "seed",
    "faults", "fault_seed", "threads", "topology", "metrics", "cases"};
const std::set<std::string> kMetricsTopKeys = {"schema", "kind", "lanes",
                                               "sample_every", "metrics"};
const std::set<std::string> kMetricsSeriesKeys = {"schema", "kind", "samples"};
const std::set<std::string> kMetricsSampleKeys = {"label", "sim_us", "wall_ms",
                                                  "snapshot"};

/// Per-kind key sets of one metric entry in a snapshot.  Counters grow a
/// "per_lane" array only with more than one lane.
void expect_metric_entry_keys(const Json& e, bool multi_lane) {
  const std::string kind = e.at("kind").string;
  const std::string cls = e.at("class").string;
  EXPECT_TRUE(cls == "sim" || cls == "wall") << e.at("name").string;
  if (kind == "counter") {
    std::set<std::string> want = {"name", "class", "kind", "value"};
    if (multi_lane) want.insert("per_lane");
    EXPECT_EQ(e.keys(), want) << e.at("name").string;
  } else if (kind == "gauge") {
    EXPECT_EQ(e.keys(),
              std::set<std::string>({"name", "class", "kind", "value"}))
        << e.at("name").string;
  } else {
    EXPECT_EQ(kind, "histogram") << e.at("name").string;
    EXPECT_EQ(e.keys(),
              std::set<std::string>({"name", "class", "kind", "count", "sum",
                                     "max", "buckets"}))
        << e.at("name").string;
  }
}

[[nodiscard]] std::string slurp_and_remove(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string text;
  if (f != nullptr) {
    char buf[4096];
    for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;)
      text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
  }
  return text;
}

/// A small workload whose profile exercises comm, compute, regions and
/// (when `faults`) the recovery counters.
[[nodiscard]] std::string profile_json(bool faults) {
  // Pinned to the hypercube preset: the golden checks the emitted
  // topology name, which must not drift with the VMP_TOPOLOGY env (the CI
  // mesh leg runs this suite too).
  Cube::Options opts;
  opts.topology = TopologyKind::Hypercube;
  Cube cube(4, CostParams::cm2(), opts);
  if (faults)
    cube.enable_faults(FaultPlan::transient(19, 0.1, 0.05, 0.02, 15.0));
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, 24, 24);
  A.load(random_matrix(24, 24, 2));
  (void)reduce_rows(A, Plus<double>{});
  (void)extract_col(A, 3);
  return profile_to_json(cube.clock());
}

TEST(ProfileSchema, TopLevelAndCostModelKeysAreExact) {
  const Json doc = JsonParser(profile_json(false)).parse();
  EXPECT_EQ(doc.keys(), kProfileTopKeys);
  EXPECT_EQ(doc.at("schema").string, "vmp-profile-v1");
  EXPECT_EQ(doc.at("cost_model").keys(), kCostModelKeys);
  EXPECT_EQ(doc.at("cost_model").at("name").string, "cm2");
  // The physical network the clock's charges were computed on.
  EXPECT_EQ(doc.at("topology").keys(), kTopologyKeys);
  EXPECT_EQ(doc.at("topology").at("name").string, "hypercube");
}

TEST(ProfileSchema, TotalsKeysAreExactIncludingFaultCounters) {
  const Json doc = JsonParser(profile_json(false)).parse();
  EXPECT_EQ(doc.at("totals").keys(), kTotalsKeys);
  // Fault-free run: counters present but zero.
  EXPECT_EQ(doc.at("totals").at("fault_retries").number, 0.0);
  EXPECT_EQ(doc.at("totals").at("fault_chksum_fails").number, 0.0);
  EXPECT_EQ(doc.at("totals").at("fault_reroutes").number, 0.0);
}

TEST(ProfileSchema, TotalsConserveTheClockDecomposition) {
  const Json doc = JsonParser(profile_json(true)).parse();
  const Json& t = doc.at("totals");
  EXPECT_NEAR(t.at("now_us").number,
              t.at("comm_us").number + t.at("compute_us").number +
                  t.at("router_us").number + t.at("host_us").number,
              1e-6 * (1.0 + t.at("now_us").number));
  EXPECT_GT(t.at("fault_retries").number, 0.0)
      << "the faulty workload should have retried at least once";
}

TEST(ProfileSchema, RegionEntriesCarryExactSelfAndTotalProfiles) {
  const Json doc = JsonParser(profile_json(true)).parse();
  const Json& regions = doc.at("regions");
  ASSERT_EQ(regions.kind, Json::Kind::Array);
  ASSERT_FALSE(regions.array.empty());
  bool saw_fault_region = false;
  for (const Json& r : regions.array) {
    EXPECT_EQ(r.keys(), std::set<std::string>({"path", "self", "total"}));
    EXPECT_EQ(r.at("self").keys(), kRegionProfileKeys);
    EXPECT_EQ(r.at("total").keys(), kRegionProfileKeys);
    if (r.at("path").string.find("fault_") != std::string::npos)
      saw_fault_region = true;
  }
  EXPECT_TRUE(saw_fault_region)
      << "recovery costs must be attributed to fault_* regions";
}

TEST(BenchSchema, DocumentAndCaseKeysAreExact) {
  const std::string path = "schema_test_bench.json";
  {
    const char* argv[] = {"test_report_schema", "--dims=2", "--sizes=8",
                          "--json=schema_test_bench.json"};
    bench::Harness h("schema_test", 4, const_cast<char**>(argv));
    for (int d : h.dims({2}, {2}))
      for (std::size_t n : h.sizes({8}, {8}))
        h.run("case", {{"dim", d}, {"n", static_cast<std::int64_t>(n)}},
              [&](bench::Case& c) {
                Cube cube(d, CostParams::cm2());
                Grid grid = Grid::square(cube);
                DistMatrix<double> A(grid, n, n);
                A.load(random_matrix(n, n, 3));
                (void)reduce_rows(A, Plus<double>{});
                c.counter("sim_us", cube.clock().now_us());
                c.label("labelled");
                c.profile("run", cube.clock());
              });
    ASSERT_EQ(h.finish(), 0);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;)
    text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  const Json doc = JsonParser(text).parse();
  EXPECT_EQ(doc.keys(), kBenchTopKeys);
  EXPECT_EQ(doc.at("schema").string, "vmp-bench-v1");
  EXPECT_EQ(doc.at("name").string, "schema_test");
  EXPECT_EQ(doc.at("seed").number,
            static_cast<double>(global_seed()));
  EXPECT_EQ(doc.at("faults").boolean, false);
  EXPECT_EQ(doc.at("metrics").boolean, false);
  // The resolved worker-team lane count every cube of the run used.
  EXPECT_EQ(doc.at("threads").number,
            static_cast<double>(WorkerTeam::resolve_lanes(env_threads())));
  // The run-default topology preset (VMP_TOPOLOGY / --topology).
  EXPECT_EQ(doc.at("topology").string, to_string(env_topology()));
  ASSERT_EQ(doc.at("cases").array.size(), 1u);
  const Json& kase = doc.at("cases").array[0];
  EXPECT_EQ(kase.keys(),
            std::set<std::string>({"name", "args", "label", "wall_ms",
                                   "counters", "profiles"}));
  EXPECT_EQ(kase.at("args").keys(), std::set<std::string>({"dim", "n"}));
  // The embedded profile is a full vmp-profile-v1 document.
  const Json& prof = kase.at("profiles").at("run");
  EXPECT_EQ(prof.keys(), kProfileTopKeys);
  EXPECT_EQ(prof.at("schema").string, "vmp-profile-v1");
  EXPECT_EQ(prof.at("totals").keys(), kTotalsKeys);
}

TEST(BenchSchema, SparseBenchCaseKeysMatchBenchSpmv) {
  // Pins the case shape bench_spmv emits: the nnz/skew_pct args and the
  // per-embedding profile legs.  The perf-gate and plotting tooling key on
  // these names, so a rename in bench_spmv must fail here first.
  const std::string path = "schema_test_spmv.json";
  {
    const char* argv[] = {"test_report_schema", "--dims=2", "--sizes=8",
                          "--json=schema_test_spmv.json"};
    bench::Harness h("schema_test", 4, const_cast<char**>(argv));
    for (int d : h.dims({2}, {2}))
      for (std::size_t n : h.sizes({8}, {8})) {
        const HostCsr H = power_law_csr(n, n, 3.0, 1.2, 91);
        h.run("spmv_embedding_sweep",
              {{"dim", d},
               {"n", static_cast<std::int64_t>(n)},
               {"nnz", static_cast<std::int64_t>(H.nnz())},
               {"skew_pct", static_cast<std::int64_t>(120)}},
              [&](bench::Case& c) {
                double t_con = 0, t_cyc = 0;
                for (int which = 0; which < 2; ++which) {
                  const MatrixLayout layout = which == 0
                                                  ? MatrixLayout::blocked()
                                                  : MatrixLayout::cyclic();
                  Cube cube(d, CostParams::cm2());
                  Grid grid = Grid::square(cube);
                  DistSparseMatrix<double> A(grid, n, n, layout);
                  A.load_csr(H.rowptr, H.colind, H.vals);
                  DistVector<double> x(grid, n, Align::Cols, layout.cols);
                  x.load(random_vector(n, 92));
                  cube.clock().reset();
                  (void)spmv_fused(A, x);
                  (which == 0 ? t_con : t_cyc) = cube.clock().now_us();
                  c.profile(which == 0 ? "consecutive" : "cyclic",
                            cube.clock());
                }
                c.counter("sim_consecutive_us", t_con);
                c.counter("sim_cyclic_us", t_cyc);
                c.counter("cyclic_gain", t_con / t_cyc);
              });
      }
    ASSERT_EQ(h.finish(), 0);
  }
  const Json doc = JsonParser(slurp_and_remove(path)).parse();
  EXPECT_EQ(doc.keys(), kBenchTopKeys);
  ASSERT_EQ(doc.at("cases").array.size(), 1u);
  const Json& kase = doc.at("cases").array[0];
  EXPECT_EQ(kase.keys(),
            std::set<std::string>(
                {"name", "args", "wall_ms", "counters", "profiles"}));
  EXPECT_EQ(kase.at("name").string, "spmv_embedding_sweep");
  EXPECT_EQ(kase.at("args").keys(),
            std::set<std::string>({"dim", "n", "nnz", "skew_pct"}));
  EXPECT_EQ(kase.at("counters").keys(),
            std::set<std::string>(
                {"sim_consecutive_us", "sim_cyclic_us", "cyclic_gain"}));
  EXPECT_EQ(kase.at("profiles").keys(),
            std::set<std::string>({"consecutive", "cyclic"}));
  for (const std::string leg : {"consecutive", "cyclic"}) {
    const Json& prof = kase.at("profiles").at(leg);
    EXPECT_EQ(prof.keys(), kProfileTopKeys);
    EXPECT_EQ(prof.at("schema").string, "vmp-profile-v1");
  }
}

TEST(BenchSchema, FaultsFlagIsRecordedInTheDocument) {
  const std::string path = "schema_test_faults.json";
  {
    const char* argv[] = {"test_report_schema", "--faults=77",
                          "--json=schema_test_faults.json"};
    bench::Harness h("schema_test", 3, const_cast<char**>(argv));
    EXPECT_TRUE(h.faults());
    EXPECT_EQ(h.fault_plan().seed, 77u);
    EXPECT_TRUE(h.fault_plan().has_transient());
    h.run("noop", {}, [&](bench::Case&) {});
    ASSERT_EQ(h.finish(), 0);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;)
    text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  const Json doc = JsonParser(text).parse();
  EXPECT_EQ(doc.at("faults").boolean, true);
}

TEST(BenchSchema, QuickAndFaultsComposeAndAreRecorded) {
  // --quick and --faults=SEED together must both be honored AND both be
  // visible in the document: quick=true, faults=true, fault_seed=SEED.
  const std::string path = "schema_test_quick_faults.json";
  {
    const char* argv[] = {"test_report_schema", "--quick", "--faults=91",
                          "--trials=5", "--warmup=3",
                          "--json=schema_test_quick_faults.json"};
    bench::Harness h("schema_test", 6, const_cast<char**>(argv));
    EXPECT_TRUE(h.quick());
    EXPECT_TRUE(h.faults());
    EXPECT_EQ(h.fault_plan().seed, 91u);
    EXPECT_EQ(h.trials(), 1) << "--quick caps trials even with --faults";
    EXPECT_EQ(h.warmup(), 1) << "--quick caps warmup even with --faults";
    int executions = 0;
    h.run("noop", {}, [&](bench::Case&) { ++executions; });
    EXPECT_EQ(executions, 2);  // 1 warmup + 1 trial
    ASSERT_EQ(h.finish(), 0);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;)
    text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  const Json doc = JsonParser(text).parse();
  EXPECT_EQ(doc.keys(), kBenchTopKeys);
  EXPECT_EQ(doc.at("quick").boolean, true);
  EXPECT_EQ(doc.at("faults").boolean, true);
  EXPECT_EQ(doc.at("fault_seed").number, 91.0);
  EXPECT_EQ(doc.at("trials").number, 1.0);
  EXPECT_EQ(doc.at("warmup").number, 1.0);
}

TEST(MetricsSchema, SnapshotAndSeriesKeysAreExact) {
  Cube cube(4, CostParams::cm2());
  cube.enable_metrics(/*sample_every=*/1);
  Grid grid = Grid::square(cube);
  DistMatrix<double> A(grid, 24, 24);
  A.load(random_matrix(24, 24, 5));
  (void)reduce_rows(A, Plus<double>{});

  const std::string snap = metrics_to_json(cube.metrics());
  const Json doc = JsonParser(snap).parse();
  EXPECT_EQ(doc.keys(), kMetricsTopKeys);
  EXPECT_EQ(doc.at("schema").string, "vmp-metrics-v1");
  EXPECT_EQ(doc.at("kind").string, "snapshot");
  EXPECT_EQ(doc.at("sample_every").number, 1.0);
  const bool multi_lane = doc.at("lanes").number > 1.0;
  ASSERT_EQ(doc.at("metrics").kind, Json::Kind::Array);
  ASSERT_FALSE(doc.at("metrics").array.empty());
  for (const Json& e : doc.at("metrics").array)
    expect_metric_entry_keys(e, multi_lane);

  const std::string series = metrics_series_to_json(
      {{"case_a", 10.0, 1.5, snap}, {"case_b", 20.0, 3.0, snap}});
  const Json sdoc = JsonParser(series).parse();
  EXPECT_EQ(sdoc.keys(), kMetricsSeriesKeys);
  EXPECT_EQ(sdoc.at("schema").string, "vmp-metrics-v1");
  EXPECT_EQ(sdoc.at("kind").string, "series");
  ASSERT_EQ(sdoc.at("samples").array.size(), 2u);
  for (const Json& s : sdoc.at("samples").array) {
    EXPECT_EQ(s.keys(), kMetricsSampleKeys);
    EXPECT_EQ(s.at("snapshot").keys(), kMetricsTopKeys);
  }
}

TEST(BenchSchema, MetricsFlagEmbedsSnapshotsAndWritesSeriesFile) {
  // --metrics must flip the document flag, embed a per-case snapshot, and
  // write a METRICS_* series sidecar next to a BENCH_* json path.
  {
    const char* argv[] = {"test_report_schema", "--metrics",
                          "--json=BENCH_schema_metrics.json"};
    bench::Harness h("schema_test", 3, const_cast<char**>(argv));
    EXPECT_TRUE(h.metrics());
    h.run("case", {{"dim", 2}}, [&](bench::Case& c) {
      Cube cube(2, CostParams::cm2());
      if (h.metrics()) cube.enable_metrics(/*sample_every=*/1);
      Grid grid = Grid::square(cube);
      DistMatrix<double> A(grid, 8, 8);
      A.load(random_matrix(8, 8, 7));
      (void)reduce_rows(A, Plus<double>{});
      if (h.metrics()) c.metrics(cube.metrics(), cube.clock().now_us());
    });
    ASSERT_EQ(h.finish(), 0);
  }
  const Json doc =
      JsonParser(slurp_and_remove("BENCH_schema_metrics.json")).parse();
  EXPECT_EQ(doc.keys(), kBenchTopKeys);
  EXPECT_EQ(doc.at("metrics").boolean, true);
  ASSERT_EQ(doc.at("cases").array.size(), 1u);
  const Json& kase = doc.at("cases").array[0];
  EXPECT_EQ(kase.keys(),
            std::set<std::string>(
                {"name", "args", "wall_ms", "counters", "metrics"}));
  EXPECT_EQ(kase.at("metrics").keys(), kMetricsTopKeys);

  const Json series =
      JsonParser(slurp_and_remove("METRICS_schema_metrics.json")).parse();
  EXPECT_EQ(series.keys(), kMetricsSeriesKeys);
  EXPECT_EQ(series.at("kind").string, "series");
  ASSERT_EQ(series.at("samples").array.size(), 1u);
  EXPECT_EQ(series.at("samples").array[0].at("label").string, "case/dim=2");
}

TEST(VmpSeed, EnvOverrideIsHonored) {
  ASSERT_TRUE(kSeedEnvPinned);
  EXPECT_EQ(global_seed(), 424242u);
  EXPECT_EQ(announce_seed("test_report_schema"), 424242u);
}

}  // namespace
}  // namespace vmp
