// Topology conformance battery (tentpole check of the topology-parametric
// machine core) and the hypercube twin sweep.
//
// Conformance, on every preset (hypercube / mesh / torus / dragonfly,
// minimal and Valiant): neighbor symmetry, link enumeration completeness,
// minimal-route validity and termination, min_first_ports minimality,
// route_avoiding correctness under killed links and nodes, and the charge
// decomposition (comm + compute + router + host == now_us) of a real
// workload on each preset.
//
// The twin sweep is the API-redesign contract: the hypercube preset IS the
// historical machine.  A cube built through the seed-era two-argument
// constructor (no Options, VMP_TOPOLOGY cleared) and one built with an
// explicit `Options{.topology = Hypercube}` must be bit-identical in
// results, simulated clock, SimStats and charge-for-charge event traces,
// with and without a fault plan.  Results (never charges) must also be
// identical across every other preset — algorithms are topology-blind.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "algorithms/matvec.hpp"
#include "core/primitives.hpp"
#include "core/scan_ops.hpp"
#include "core/transpose.hpp"
#include "fault/fault.hpp"
#include "net/dragonfly_topology.hpp"
#include "net/hypercube_topology.hpp"
#include "net/mesh_topology.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

const std::uint64_t kBaseSeed = announce_seed("test_topology");

// --------------------------------------------------------------------------
// Conformance helpers.

[[nodiscard]] std::vector<std::unique_ptr<Topology>> presets(int dim) {
  std::vector<std::unique_ptr<Topology>> out;
  out.push_back(std::make_unique<HypercubeTopology>(dim));
  out.push_back(std::make_unique<MeshTorusTopology>(dim, /*wrap=*/false));
  out.push_back(std::make_unique<MeshTorusTopology>(dim, /*wrap=*/true));
  out.push_back(std::make_unique<DragonflyTopology>(dim));
  out.push_back(std::make_unique<DragonflyTopology>(
      dim, DragonflyTopology::RouteMode::Valiant));
  return out;
}

/// BFS hop distances from `src` over live ports — the reference metric the
/// topology's own routes are judged against.
[[nodiscard]] std::vector<int> bfs_dist(const Topology& t, proc_t src) {
  std::vector<int> dist(t.node_count(), -1);
  std::queue<proc_t> q;
  dist[src] = 0;
  q.push(src);
  while (!q.empty()) {
    const proc_t at = q.front();
    q.pop();
    for (int p = 0; p < t.max_ports(); ++p) {
      const proc_t nb = t.port_neighbor(at, p);
      if (nb == kNoNeighbor || dist[nb] >= 0) continue;
      dist[nb] = dist[at] + 1;
      q.push(nb);
    }
  }
  return dist;
}

/// Every hop must cross a real port of its `from` node onto `to`, chain
/// src → … → dst, and carry that port's axis.
void expect_valid_route(const Topology& t, proc_t src, proc_t dst,
                        const std::vector<Hop>& hops, std::size_t max_len) {
  ASSERT_LE(hops.size(), max_len) << t.name();
  proc_t at = src;
  for (const Hop& h : hops) {
    EXPECT_EQ(h.from, at) << t.name() << " broken hop chain";
    EXPECT_EQ(t.port_neighbor(h.from, h.port), h.to)
        << t.name() << " hop does not follow a port";
    EXPECT_EQ(t.port_axis(h.from, h.port), h.axis) << t.name();
    at = h.to;
  }
  EXPECT_EQ(at, dst) << t.name() << " route does not reach its destination";
}

class TopologyConformance : public ::testing::TestWithParam<int> {};

TEST_P(TopologyConformance, NeighborsAreSymmetricAndInRange) {
  const int d = GetParam();
  for (const auto& t : presets(d)) {
    const proc_t n = t->node_count();
    EXPECT_EQ(n, proc_t{1} << d) << t->name();
    for (proc_t a = 0; a < n; ++a) {
      for (int p = 0; p < t->max_ports(); ++p) {
        const proc_t b = t->port_neighbor(a, p);
        if (b == kNoNeighbor) continue;
        ASSERT_LT(b, n) << t->name();
        EXPECT_NE(b, a) << t->name() << " self-loop";
        const std::vector<proc_t> back = t->neighbors(b);
        EXPECT_NE(std::find(back.begin(), back.end(), a), back.end())
            << t->name() << " edge " << a << "->" << b << " not symmetric";
      }
    }
  }
}

TEST_P(TopologyConformance, LinkEnumerationIsCompleteAndConsistent) {
  const int d = GetParam();
  for (const auto& t : presets(d)) {
    const std::vector<Link> links = t->links();
    EXPECT_EQ(links.size(), t->link_count()) << t->name();
    // Dense ids, endpoints adjacent over a port of the link's axis.
    std::set<std::uint64_t> ids;
    for (const Link& l : links) {
      EXPECT_EQ(l.id, static_cast<std::uint64_t>(ids.size())) << t->name();
      ids.insert(l.id);
      bool connects = false;
      for (int p = 0; p < t->max_ports(); ++p)
        if (t->port_neighbor(l.a, p) == l.b && t->port_axis(l.a, p) == l.axis)
          connects = true;
      EXPECT_TRUE(connects)
          << t->name() << " link " << l.id << " endpoints not adjacent";
    }
    // Completeness: every (node, port) edge resolves to an enumerated id,
    // and every id is reached from both endpoints (undirected naming).
    std::map<std::uint64_t, std::set<proc_t>> touched;
    for (proc_t a = 0; a < t->node_count(); ++a)
      for (int p = 0; p < t->max_ports(); ++p) {
        const proc_t b = t->port_neighbor(a, p);
        if (b == kNoNeighbor) continue;
        const std::uint64_t id = t->link_id(a, p);
        ASSERT_LT(id, t->link_count()) << t->name();
        touched[id].insert(a);
      }
    EXPECT_EQ(touched.size(), t->link_count())
        << t->name() << " some enumerated link is reachable from no port";
    for (const Link& l : links) {
      EXPECT_TRUE(touched[l.id].count(l.a) && touched[l.id].count(l.b))
          << t->name() << " link " << l.id
          << " not addressable from both endpoints";
    }
  }
  // The cube's analytic enumeration: d·2^(d-1) edges.
  HypercubeTopology cube(d);
  EXPECT_EQ(cube.link_count(),
            static_cast<std::uint64_t>(d) * (proc_t{1} << d) / 2);
}

TEST_P(TopologyConformance, MinimalRoutesAreValidShortestAndTerminate) {
  const int d = GetParam();
  SplitMix64 rng(kBaseSeed ^ 0x1001u);
  for (const auto& t : presets(d)) {
    const proc_t n = t->node_count();
    const auto* df = dynamic_cast<const DragonflyTopology*>(t.get());
    const bool valiant =
        df != nullptr && df->route_mode() == DragonflyTopology::RouteMode::Valiant;
    for (int trial = 0; trial < 64; ++trial) {
      const proc_t src = static_cast<proc_t>(rng.below(n));
      const proc_t dst = static_cast<proc_t>(rng.below(n));
      std::vector<Hop> hops;
      t->route(src, dst, hops);
      // Valiant misroutes through a random intermediate group: valid and
      // bounded, but deliberately not minimal.
      const std::size_t cap =
          valiant ? 2 * static_cast<std::size_t>(t->diameter()) + 1
                  : static_cast<std::size_t>(t->diameter());
      expect_valid_route(*t, src, dst, hops, std::max<std::size_t>(cap, 1));
      const std::vector<int> dist = bfs_dist(*t, src);
      ASSERT_GE(dist[dst], 0) << t->name() << " disconnected";
      if (!valiant)
        EXPECT_EQ(hops.size(), static_cast<std::size_t>(dist[dst]))
            << t->name() << " route " << src << "->" << dst << " not minimal";
      if (src != dst) {
        ASSERT_FALSE(hops.empty());
        // first_hop is always the canonical *minimal* step (the packet
        // router never misroutes), so under Valiant it is checked against
        // the distance metric rather than the detouring route().
        const Hop first = t->first_hop(src, dst);
        if (!valiant) {
          EXPECT_EQ(first.to, hops.front().to)
              << t->name() << " first_hop disagrees with route()";
        } else {
          const std::vector<int> dfi = bfs_dist(*t, first.to);
          EXPECT_EQ(dfi[dst] + 1, dist[dst])
              << t->name() << " first_hop not a shortest-path step";
        }
        // Every advertised minimal first port actually shortens the path.
        std::vector<int> ports;
        t->min_first_ports(src, dst, ports);
        EXPECT_FALSE(ports.empty()) << t->name();
        for (const int p : ports) {
          const proc_t nb = t->port_neighbor(src, p);
          ASSERT_NE(nb, kNoNeighbor) << t->name();
          const std::vector<int> dnb = bfs_dist(*t, nb);
          EXPECT_EQ(dnb[dst] + 1, dist[dst])
              << t->name() << " min_first_ports port " << p
              << " does not start a shortest path " << src << "->" << dst;
        }
      } else {
        EXPECT_TRUE(hops.empty()) << t->name();
      }
    }
  }
}

TEST_P(TopologyConformance, RouteAvoidingRoutesAroundKilledLinksAndNodes) {
  const int d = GetParam();
  SplitMix64 rng(kBaseSeed ^ 0x2002u);
  for (const auto& t : presets(d)) {
    const proc_t n = t->node_count();
    const std::vector<Link> links = t->links();
    for (int trial = 0; trial < 32; ++trial) {
      const Link dead = links[rng.below(links.size())];
      const proc_t dead_node =
          static_cast<proc_t>(rng.below(n));  // may coincide with endpoints
      const auto link_dead = [&](proc_t node, int port) {
        return t->link_id(node, port) == dead.id;
      };
      const auto node_dead = [&](proc_t node) { return node == dead_node; };
      const proc_t src = static_cast<proc_t>(rng.below(n));
      const proc_t dst = static_cast<proc_t>(rng.below(n));
      if (src == dead_node || dst == dead_node) continue;
      std::vector<Hop> hops;
      const bool ok = t->route_avoiding(src, dst, link_dead, node_dead, hops);
      if (!ok) {
        // Refusal is only legitimate when the faults genuinely cut
        // src from dst (possible on the open mesh).
        std::vector<int> dist(n, -1);
        std::queue<proc_t> q;
        dist[src] = 0;
        q.push(src);
        while (!q.empty()) {
          const proc_t at = q.front();
          q.pop();
          for (int p = 0; p < t->max_ports(); ++p) {
            const proc_t nb = t->port_neighbor(at, p);
            if (nb == kNoNeighbor || dist[nb] >= 0 || link_dead(at, p))
              continue;
            if (nb != dst && node_dead(nb)) continue;
            dist[nb] = dist[at] + 1;
            q.push(nb);
          }
        }
        EXPECT_LT(dist[dst], 0)
            << t->name() << " refused a live route " << src << "->" << dst;
        continue;
      }
      expect_valid_route(*t, src, dst, hops, static_cast<std::size_t>(n));
      for (const Hop& h : hops) {
        EXPECT_FALSE(link_dead(h.from, h.port))
            << t->name() << " reroute crosses the dead link";
        if (h.to != dst)
          EXPECT_NE(h.to, dead_node)
              << t->name() << " reroute passes through the dead node";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, TopologyConformance, ::testing::Values(1, 4, 6));

TEST(TopologyCharges, ChargeDecompositionSumsToNowUsOnEveryPreset) {
  // A workload with every charge family — exchanges, all-port rounds,
  // compute steps, the packet router — on each preset: the clock's
  // decomposition must stay exact, and physical link crossings can never
  // undercut the message count.
  for (const TopologyKind kind :
       {TopologyKind::Hypercube, TopologyKind::Mesh, TopologyKind::Torus,
        TopologyKind::Dragonfly}) {
    Cube::Options opts;
    opts.topology = kind;
    Cube cube(4, CostParams::cm2(), opts);
    Grid grid = Grid::square(cube);
    DistMatrix<double> A(grid, 20, 20);
    A.load(random_matrix(20, 20, 11));
    DistVector<double> v(grid, 20, Align::Cols);
    v.load(random_vector(20, 12));
    (void)matvec(A, v);
    (void)transpose(A);
    (void)reduce_rows(A, Plus<double>{});
    const SimClock& clk = cube.clock();
    EXPECT_NEAR(clk.now_us(),
                clk.comm_us() + clk.compute_us() + clk.router_us() +
                    clk.host_us(),
                1e-9 * (1.0 + clk.now_us()))
        << to_string(kind);
    EXPECT_GT(clk.comm_us(), 0.0) << to_string(kind);
    const SimStats& st = clk.stats();
    EXPECT_GE(st.link_hops, st.messages) << to_string(kind);
    if (kind == TopologyKind::Hypercube)
      EXPECT_EQ(st.link_hops, st.messages)
          << "unit-hop preset: one physical link per message";
    EXPECT_STREQ(cube.topology().name(), to_string(kind));
  }
}

// --------------------------------------------------------------------------
// The hypercube twin sweep.

struct Snapshot {
  std::vector<std::vector<double>> results;
  double now_us = 0.0;
  SimStats stats;
  std::vector<std::string> trace_paths;
  std::vector<TraceEvent> trace_events;
};

struct TrialConfig {
  int d, gr, gc;
  std::size_t nrows, ncols;
  bool cyclic;
  std::uint64_t data_seed;
};

[[nodiscard]] TrialConfig draw(int trial) {
  SplitMix64 rng(kBaseSeed + static_cast<std::uint64_t>(trial) * 0x517cull);
  TrialConfig c;
  c.d = 1 + static_cast<int>(rng.below(6));
  c.gr = static_cast<int>(rng.below(static_cast<std::uint64_t>(c.d) + 1));
  c.gc = c.d - c.gr;
  c.nrows = 1 + rng.below(32);
  c.ncols = 1 + rng.below(32);
  c.cyclic = rng.below(2) == 0;
  c.data_seed = rng.next();
  return c;
}

enum class Build { SeedCtor, ExplicitHypercube, Mesh, Torus, Dragonfly };

[[nodiscard]] Snapshot run_workload(const TrialConfig& c, Build build,
                                    bool faulty) {
  std::unique_ptr<Cube> cube;
  if (build == Build::SeedCtor) {
    // The historical construction path: two-argument constructor, no
    // Options in sight (VMP_TOPOLOGY is cleared by the fixture).
    cube = std::make_unique<Cube>(c.d, CostParams::cm2());
  } else {
    Cube::Options opts;
    opts.threads = 1;
    opts.topology = build == Build::ExplicitHypercube
                        ? TopologyKind::Hypercube
                        : build == Build::Mesh
                              ? TopologyKind::Mesh
                              : build == Build::Torus ? TopologyKind::Torus
                                                      : TopologyKind::Dragonfly;
    cube = std::make_unique<Cube>(c.d, CostParams::cm2(), opts);
  }
  if (faulty)
    cube->enable_faults(FaultPlan::transient(c.data_seed, 0.02, 0.01));
  cube->clock().tracer().set_recording(true);
  Grid grid(*cube, c.gr, c.gc);

  const MatrixLayout layout =
      c.cyclic ? MatrixLayout::cyclic() : MatrixLayout::blocked();
  const Part part = c.cyclic ? Part::Cyclic : Part::Block;
  DistMatrix<double> A(grid, c.nrows, c.ncols, layout);
  A.load(random_matrix(c.nrows, c.ncols, static_cast<unsigned>(c.data_seed)));
  DistVector<double> vc(grid, c.ncols, Align::Cols, part);
  vc.load(random_vector(c.ncols, static_cast<unsigned>(c.data_seed >> 8)));
  DistVector<double> vr(grid, c.nrows, Align::Rows, part);
  vr.load(random_vector(c.nrows, static_cast<unsigned>(c.data_seed >> 16)));

  Snapshot s;
  s.results.push_back(reduce_rows(A, Plus<double>{}).to_host());
  s.results.push_back(distribute_cols(vr, c.ncols).to_host());
  s.results.push_back(extract_row(A, c.nrows / 2).to_host());
  insert_col(A, c.ncols / 2, vr);
  s.results.push_back(A.to_host());
  s.results.push_back(matvec(A, vc).to_host());
  s.results.push_back(transpose(A).to_host());
  DistVector<double> sv(grid, c.nrows, Align::Rows, Part::Block);
  sv.load(random_vector(c.nrows, static_cast<unsigned>(c.data_seed >> 24)));
  vec_scan_inclusive(sv, Plus<double>{});
  s.results.push_back(sv.to_host());

  s.now_us = cube->clock().now_us();
  s.stats = cube->clock().stats();
  s.trace_paths = cube->clock().tracer().paths();
  s.trace_events = cube->clock().tracer().events();
  return s;
}

/// Clears VMP_TOPOLOGY for the duration of each twin trial (and restores
/// it after): the sweep pins both sides of every comparison explicitly, so
/// an inherited preset — e.g. the CI mesh leg — must not leak into the
/// seed-constructor baseline.
class TopologyTwin : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    if (const char* prev = std::getenv("VMP_TOPOLOGY")) saved_ = prev;
    ASSERT_EQ(unsetenv("VMP_TOPOLOGY"), 0);
  }
  void TearDown() override {
    if (!saved_.empty())
      ASSERT_EQ(setenv("VMP_TOPOLOGY", saved_.c_str(), 1), 0);
  }

 private:
  std::string saved_;
};

TEST_P(TopologyTwin, HypercubePresetBitIdenticalToSeedConstruction) {
  const TrialConfig c = draw(GetParam());
  SCOPED_TRACE("reproduce: VMP_SEED=" + std::to_string(kBaseSeed) +
               " ./test_topology (trial " + std::to_string(GetParam()) + ")");
  for (const bool faulty : {false, true}) {
    const Snapshot ref = run_workload(c, Build::SeedCtor, faulty);
    const Snapshot got = run_workload(c, Build::ExplicitHypercube, faulty);
    const std::string what = faulty ? "faulty" : "fault-free";
    ASSERT_EQ(ref.results.size(), got.results.size()) << what;
    for (std::size_t i = 0; i < ref.results.size(); ++i)
      EXPECT_EQ(ref.results[i], got.results[i])
          << what << " result stream " << i;
    EXPECT_EQ(ref.now_us, got.now_us) << what << " simulated clock";
    EXPECT_TRUE(ref.stats == got.stats) << what << " SimStats diverge";
    EXPECT_EQ(ref.trace_paths, got.trace_paths) << what;
    EXPECT_TRUE(ref.trace_events == got.trace_events)
        << what << " event traces diverge";
  }
}

TEST_P(TopologyTwin, ResultsAreTopologyIndependentAndChargesNeverCheaper) {
  const TrialConfig c = draw(GetParam());
  SCOPED_TRACE("reproduce: VMP_SEED=" + std::to_string(kBaseSeed) +
               " ./test_topology (trial " + std::to_string(GetParam()) + ")");
  const Snapshot ref = run_workload(c, Build::ExplicitHypercube, false);
  for (const Build build : {Build::Mesh, Build::Torus, Build::Dragonfly}) {
    const Snapshot got = run_workload(c, build, false);
    const std::string what = "build " + std::to_string(static_cast<int>(build));
    ASSERT_EQ(ref.results.size(), got.results.size()) << what;
    for (std::size_t i = 0; i < ref.results.size(); ++i)
      EXPECT_EQ(ref.results[i], got.results[i])
          << what << " results must not depend on the physical network";
    // Same logical schedule…
    EXPECT_EQ(ref.stats.comm_steps, got.stats.comm_steps) << what;
    EXPECT_EQ(ref.stats.messages, got.stats.messages) << what;
    EXPECT_EQ(ref.stats.elements_moved, got.stats.elements_moved) << what;
    EXPECT_EQ(ref.stats.flops_charged, got.stats.flops_charged) << what;
    // …but dilation and per-hop taxes only ever add physical work.
    EXPECT_GE(got.stats.link_hops, ref.stats.link_hops) << what;
    EXPECT_GE(got.now_us, ref.now_us) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopologyTwin, ::testing::Range(0, 12));

// --------------------------------------------------------------------------
// Options plumbing.

TEST(TopologyOptions, ParseAndEnvRoundTrip) {
  TopologyKind k{};
  EXPECT_TRUE(parse_topology("hypercube", k));
  EXPECT_EQ(k, TopologyKind::Hypercube);
  EXPECT_TRUE(parse_topology("cube", k));  // documented alias
  EXPECT_EQ(k, TopologyKind::Hypercube);
  EXPECT_TRUE(parse_topology("mesh", k));
  EXPECT_EQ(k, TopologyKind::Mesh);
  EXPECT_TRUE(parse_topology("torus", k));
  EXPECT_EQ(k, TopologyKind::Torus);
  EXPECT_TRUE(parse_topology("dragonfly", k));
  EXPECT_EQ(k, TopologyKind::Dragonfly);
  EXPECT_FALSE(parse_topology("banyan", k));
  for (const TopologyKind kind :
       {TopologyKind::Hypercube, TopologyKind::Mesh, TopologyKind::Torus,
        TopologyKind::Dragonfly}) {
    TopologyKind back{};
    EXPECT_TRUE(parse_topology(to_string(kind), back));
    EXPECT_EQ(back, kind);
  }
}

TEST(TopologyOptions, VmpTopologyEnvIsTheDefaultAndOptionsWin) {
  std::string saved;
  if (const char* prev = std::getenv("VMP_TOPOLOGY")) saved = prev;
  ASSERT_EQ(setenv("VMP_TOPOLOGY", "torus", 1), 0);
  EXPECT_EQ(env_topology(), TopologyKind::Torus);
  {
    Cube cube(3, CostParams::unit());
    EXPECT_EQ(cube.topology_kind(), TopologyKind::Torus);
    EXPECT_FALSE(cube.unit_hop());
  }
  {
    Cube::Options opts;
    opts.topology = TopologyKind::Hypercube;
    Cube cube(3, CostParams::unit(), opts);
    EXPECT_EQ(cube.topology_kind(), TopologyKind::Hypercube);
    EXPECT_TRUE(cube.unit_hop());
    EXPECT_EQ(cube.diameter(), 3);
    EXPECT_EQ(cube.node_count(), 8u);
    EXPECT_EQ(cube.neighbors(0), (std::vector<proc_t>{1, 2, 4}));
  }
  if (saved.empty())
    ASSERT_EQ(unsetenv("VMP_TOPOLOGY"), 0);
  else
    ASSERT_EQ(setenv("VMP_TOPOLOGY", saved.c_str(), 1), 0);
}

}  // namespace
}  // namespace vmp
