// Tests: all-port nESBT broadcast, Gray-code ring shifts, and the
// neighbor-exchange / all-port machine rounds they are built on.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <random>

#include "comm/allport.hpp"
#include "comm/shift.hpp"
#include "fault/fault.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

// Cost-exact goldens assume the paper machine: pin the hypercube preset
// so the CI mesh leg (VMP_TOPOLOGY=mesh) leaves the charges alone.
Cube::Options pin_hypercube() {
  Cube::Options o;
  o.topology = TopologyKind::Hypercube;
  return o;
}

// ---------------------------------------------------------------------------
// exchange_allport
// ---------------------------------------------------------------------------

TEST(AllportExchange, MovesDataOnEveryPortInOneStep) {
  Cube cube(3, CostParams::unit(), pin_hypercube());
  const int dims[] = {0, 1, 2};
  DistBuffer<int> got(cube, 3);
  cube.exchange_allport<int>(
      std::span<const int>(dims),
      [&](proc_t q, std::size_t idx) -> std::span<const int> {
        static thread_local std::vector<int> tmp;
        tmp.assign(1, static_cast<int>(q * 10 + idx));
        return std::span<const int>(tmp);
      },
      [&](proc_t q, std::size_t idx, std::span<const int> in) {
        got.tile(q)[idx] = in[0];
      });
  cube.each_proc([&](proc_t q) {
    for (std::size_t idx = 0; idx < 3; ++idx) {
      const proc_t partner = q ^ (1u << idx);
      EXPECT_EQ(got.tile(q)[idx], static_cast<int>(partner * 10 + idx));
    }
  });
  // One all-port step: τ + 1·t_c = 2 under the unit model.
  EXPECT_DOUBLE_EQ(cube.clock().now_us(), 2.0);
  EXPECT_EQ(cube.clock().stats().comm_steps, 1u);
  EXPECT_EQ(cube.clock().stats().messages, 24u);
}

TEST(AllportExchange, RejectsDuplicateOrBadDims) {
  Cube cube(3, CostParams::unit());
  const int dup[] = {0, 0};
  const int bad[] = {5};
  const auto send = [](proc_t, std::size_t) { return std::span<const int>{}; };
  const auto recv = [](proc_t, std::size_t, std::span<const int>) {};
  EXPECT_THROW(cube.exchange_allport<int>(std::span<const int>(dup), send, recv),
               ContractError);
  EXPECT_THROW(cube.exchange_allport<int>(std::span<const int>(bad), send, recv),
               ContractError);
}

// ---------------------------------------------------------------------------
// neighbor_exchange
// ---------------------------------------------------------------------------

TEST(NeighborExchange, IrregularPartnersInOneStep) {
  // Processors pair across different dimensions in the same round: pair
  // (0,1) across dim 0, pair (2,6) across dim 2, others sit out.
  Cube cube(3, CostParams::unit());
  const auto partner = [](proc_t q) -> proc_t {
    switch (q) {
      case 0: return 1;
      case 1: return 0;
      case 2: return 6;
      case 6: return 2;
      default: return q;
    }
  };
  DistBuffer<int> buf(cube);
  cube.each_proc([&](proc_t q) { buf.assign(q, 2, int(q)); });
  DistBuffer<int> got(cube);
  got.reserve_each(2);  // delivery assigns; slab growth is host-only
  cube.neighbor_exchange<int>(
      partner, [&](proc_t q) { return std::span<const int>(buf.tile(q)); },
      [&](proc_t q, std::span<const int> in) {
        got.assign(q, in);
      });
  EXPECT_EQ(got.host_vec(0), std::vector<int>({1, 1}));
  EXPECT_EQ(got.host_vec(1), std::vector<int>({0, 0}));
  EXPECT_EQ(got.host_vec(2), std::vector<int>({6, 6}));
  EXPECT_EQ(got.host_vec(6), std::vector<int>({2, 2}));
  EXPECT_TRUE(got.tile(3).empty());
  EXPECT_EQ(cube.clock().stats().comm_steps, 1u);
}

TEST(NeighborExchange, RejectsNonNeighborsAndAsymmetry) {
  Cube cube(3, CostParams::unit());
  const auto send = [](proc_t) { return std::span<const int>{}; };
  const auto recv = [](proc_t, std::span<const int>) {};
  // 0 <-> 3 differ in two bits.
  EXPECT_THROW(cube.neighbor_exchange<int>(
                   [](proc_t q) -> proc_t {
                     return q == 0 ? 3 : (q == 3 ? 0 : q);
                   },
                   send, recv),
               ContractError);
  // Asymmetric relation.
  EXPECT_THROW(cube.neighbor_exchange<int>(
                   [](proc_t q) -> proc_t { return q == 0 ? 1 : q; }, send,
                   recv),
               ContractError);
}

// ---------------------------------------------------------------------------
// nESBT broadcast
// ---------------------------------------------------------------------------

class EsbtSweep : public ::testing::TestWithParam<
                      std::tuple<int, std::size_t, std::uint32_t>> {};

TEST_P(EsbtSweep, MatchesBinomialBroadcastResult) {
  const auto [d, n, root_step] = GetParam();
  Cube cube(d, CostParams::unit());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  for (std::uint32_t root = 0; root < sc.size();
       root += std::max(1u, root_step)) {
    DistBuffer<double> buf(cube);
    const std::vector<double> payload = random_vector(n, 81 + root);
    cube.each_proc([&](proc_t q) {
      if (sc.rank(q) == root) buf.assign(q, payload);
    });
    broadcast_esbt(cube, buf, sc, root, [n](proc_t) { return n; });
    cube.each_proc(
        [&](proc_t q) { EXPECT_EQ(buf.host_vec(q), payload) << "q=" << q; });
  }
}

TEST_P(EsbtSweep, BeatsBinomialOnTransferTimeForLargePayloads) {
  const auto [d, n, root_step] = GetParam();
  (void)root_step;
  if (d < 3 || n < 1024) GTEST_SKIP();
  // The k-fold all-port transfer win is a cube-wiring property.
  Cube cube(d, CostParams::cm2(), pin_hypercube());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);

  DistBuffer<double> b1(cube);
  b1.assign(0, random_vector(n, 82));
  cube.clock().reset();
  broadcast(cube, b1, sc, 0);
  const double t_binomial = cube.clock().now_us();

  DistBuffer<double> b2(cube);
  b2.assign(0, random_vector(n, 82));
  cube.clock().reset();
  broadcast_esbt(cube, b2, sc, 0, [n](proc_t) { return n; });
  const double t_esbt = cube.clock().now_us();

  EXPECT_LT(t_esbt, t_binomial);
  // The gain approaches d for transfer-dominated payloads.
  EXPECT_GT(t_binomial / t_esbt, static_cast<double>(d) / 2.5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EsbtSweep,
    ::testing::Values(std::tuple{1, 7ul, 1u}, std::tuple{2, 16ul, 1u},
                      std::tuple{3, 5ul, 2u}, std::tuple{4, 64ul, 5u},
                      std::tuple{5, 33ul, 11u}, std::tuple{6, 2048ul, 21u},
                      std::tuple{4, 1ul, 5u}, std::tuple{4, 0ul, 5u},
                      std::tuple{6, 8192ul, 63u}));

// ---------------------------------------------------------------------------
// Ring shifts
// ---------------------------------------------------------------------------

class ShiftSweep
    : public ::testing::TestWithParam<std::tuple<int, int, RingOrder>> {};

TEST_P(ShiftSweep, RotatesBlocksByOnePosition) {
  const auto [d, by, order] = GetParam();
  Cube cube(d, CostParams::unit());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  DistBuffer<double> buf(cube);
  cube.each_proc([&](proc_t q) {
    buf.assign(q, 3, static_cast<double>(ring_pos(order, sc.rank(q))));
  });
  shift_blocks(cube, buf, sc, by, order);
  const std::uint32_t P = sc.size();
  cube.each_proc([&](proc_t q) {
    const std::uint32_t pos = ring_pos(order, sc.rank(q));
    const std::uint32_t src = (pos + P - static_cast<std::uint32_t>(by)) % P;
    ASSERT_EQ(buf.len(q), 3u);
    EXPECT_EQ(buf.tile(q)[0], static_cast<double>(src)) << "q=" << q;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShiftSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 5),
                       ::testing::Values(1, -1, 2, 3, -5),
                       ::testing::Values(RingOrder::Gray, RingOrder::Binary)));

TEST(Shift, StrideChargesStoreAndForwardRounds) {
  // A Gray stride-s shift is charged as the dimension-order relay it would
  // be on the wire: exactly shift_rounds(sc, s) lockstep rounds — 1 for
  // unit strides, never more than d.  Cost-exact: pin the paper machine.
  Cube cube(4, CostParams::unit(), pin_hypercube());
  const SubcubeSet sc = SubcubeSet::contiguous(0, 4);
  EXPECT_EQ(shift_rounds(sc, 1), 1);
  EXPECT_EQ(shift_rounds(sc, -1), 1);
  for (const int by : {1, -1, 2, 3, 4, 8, -5}) {
    DistBuffer<double> buf(cube);
    cube.each_proc([&](proc_t q) { buf.assign(q, 4, static_cast<double>(q)); });
    cube.clock().reset();
    shift_blocks(cube, buf, sc, by, RingOrder::Gray);
    const int rounds = shift_rounds(sc, by);
    EXPECT_GE(rounds, 1);
    EXPECT_LE(rounds, sc.k());
    EXPECT_EQ(cube.clock().stats().comm_steps,
              static_cast<std::uint64_t>(rounds))
        << "by=" << by;
  }
}

TEST(Shift, CostModelMatchesChargedTime) {
  // shift_cost_model must price exactly what shift_blocks charges, on
  // whatever topology the run uses (the matmul_auto selector leans on it).
  Cube cube(4, CostParams::cm2());
  const SubcubeSet sc = SubcubeSet::contiguous(0, 4);
  const std::size_t n = 32;
  for (const int by : {1, -1, 2, 4, 5}) {
    DistBuffer<double> buf(cube);
    cube.each_proc([&](proc_t q) { buf.assign(q, random_vector(n, q)); });
    const double model = shift_cost_model(cube, sc, by, n);
    cube.clock().reset();
    shift_blocks(cube, buf, sc, by, RingOrder::Gray);
    EXPECT_DOUBLE_EQ(cube.clock().now_us(), model) << "by=" << by;
  }
}

namespace {

// One randomized stride workout: ragged tiles (some empty), P random
// strides, then the closing shift that brings the net displacement back to
// zero.  Returns the final tile contents and the simulated finish time.
struct ShiftRun {
  std::vector<std::vector<double>> tiles;
  double t_us = 0.0;
};

ShiftRun run_shift_sequence(int d, unsigned threads, RingOrder order,
                            bool faults) {
  Cube::Options opts;
  opts.threads = threads;
  Cube cube(d, CostParams::cm2(), opts);
  // Within-budget rates: low enough that no message plausibly exhausts
  // the retry budget across the whole routed stride sequence.
  if (faults)
    cube.enable_faults(FaultPlan::transient(17, /*drop=*/0.05,
                                            /*corrupt=*/0.02));
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  const std::uint32_t P = sc.size();
  DistBuffer<double> buf(cube);
  for (proc_t q = 0; q < cube.procs(); ++q)
    buf.assign(q, random_vector((q * 7 + 3) % 17, 1000 + q));
  std::mt19937 rng(404 + static_cast<unsigned>(d));
  int sum = 0;
  for (std::uint32_t it = 0; it < P; ++it) {
    const int by =
        static_cast<int>(rng() % (2 * P + 1)) - static_cast<int>(P);
    shift_blocks(cube, buf, sc, by, order);
    sum += by;
  }
  shift_blocks(cube, buf, sc, -sum, order);
  ShiftRun r;
  for (proc_t q = 0; q < cube.procs(); ++q)
    r.tiles.push_back(buf.host_vec(q));
  r.t_us = cube.clock().now_us();
  return r;
}

}  // namespace

TEST(Shift, RandomStridesRoundTripUnderThreadsAndFaults) {
  // Property suite for the generalized strides: after a random stride
  // sequence whose displacements cancel, every tile is bit-identically
  // back home — in Gray and Binary order, under within-budget transient
  // fault plans, at thread counts {1, 3, hardware}; and the runs are
  // bit-identical (contents AND simulated time) across thread counts.
  for (const int d : {2, 4, 5})
    for (const RingOrder order : {RingOrder::Gray, RingOrder::Binary})
      for (const bool faults : {false, true}) {
        const ShiftRun t1 = run_shift_sequence(d, 1, order, faults);
        const ShiftRun t3 = run_shift_sequence(d, 3, order, faults);
        const ShiftRun thw = run_shift_sequence(d, 0, order, faults);
        for (proc_t q = 0; q < (proc_t{1} << d); ++q)
          EXPECT_EQ(t1.tiles[q], random_vector((q * 7 + 3) % 17, 1000 + q))
              << "d=" << d << " q=" << q << " faults=" << faults;
        EXPECT_EQ(t1.tiles, t3.tiles);
        EXPECT_EQ(t1.tiles, thw.tiles);
        EXPECT_DOUBLE_EQ(t1.t_us, t3.t_us);
        EXPECT_DOUBLE_EQ(t1.t_us, thw.t_us);
      }
}

TEST(Shift, GrayIsOneStepBinaryIsManySteps) {
  const int d = 6;
  Cube cube(d, CostParams::cm2());
  const SubcubeSet sc = SubcubeSet::contiguous(0, d);
  const std::size_t n = 512;

  DistBuffer<double> g(cube);
  cube.each_proc([&](proc_t q) { g.assign(q, random_vector(n, q)); });
  cube.clock().reset();
  shift_blocks(cube, g, sc, 1, RingOrder::Gray);
  const double t_gray = cube.clock().now_us();
  const std::uint64_t steps_gray = cube.clock().stats().comm_steps;

  cube.clock().reset();
  DistBuffer<double> b(cube);
  cube.each_proc([&](proc_t q) { b.assign(q, random_vector(n, q)); });
  shift_blocks(cube, b, sc, 1, RingOrder::Binary);
  const double t_binary = cube.clock().now_us();

  EXPECT_EQ(steps_gray, 1u) << "Gray ring shift is a single cube-edge round";
  EXPECT_LT(t_gray, t_binary);
  EXPECT_GT(t_binary / t_gray, 2.0);
}

}  // namespace
}  // namespace vmp
