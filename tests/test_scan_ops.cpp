// Tests: distributed vector prefix scans (plain and segmented) against
// straight-line host references.
#include <gtest/gtest.h>

#include <memory>

#include "core/scan_ops.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

class VecScan : public ::testing::TestWithParam<
                    std::tuple<int, int, std::size_t, Align>> {
 protected:
  void SetUp() override {
    const auto [gr, gc, n, align] = GetParam();
    cube = std::make_unique<Cube>(gr + gc, CostParams::cm2());
    grid = std::make_unique<Grid>(*cube, gr, gc);
    host = random_vector(n, 301);
    v = std::make_unique<DistVector<double>>(*grid, n, align);
    v->load(host);
  }
  std::unique_ptr<Cube> cube;
  std::unique_ptr<Grid> grid;
  std::vector<double> host;
  std::unique_ptr<DistVector<double>> v;
};

TEST_P(VecScan, ExclusiveSumMatchesHost) {
  vec_scan_exclusive(*v, Plus<double>{});
  const std::vector<double> got = v->to_host();
  double acc = 0.0;
  for (std::size_t g = 0; g < host.size(); ++g) {
    EXPECT_NEAR(got[g], acc, 1e-12 * (1 + std::abs(acc))) << "g=" << g;
    acc += host[g];
  }
  EXPECT_TRUE(v->replicas_consistent());
}

TEST_P(VecScan, InclusiveSumMatchesHost) {
  vec_scan_inclusive(*v, Plus<double>{});
  const std::vector<double> got = v->to_host();
  double acc = 0.0;
  for (std::size_t g = 0; g < host.size(); ++g) {
    acc += host[g];
    EXPECT_NEAR(got[g], acc, 1e-12 * (1 + std::abs(acc)));
  }
}

TEST_P(VecScan, ExclusiveMaxMatchesHost) {
  vec_scan_exclusive(*v, Max<double>{});
  const std::vector<double> got = v->to_host();
  double acc = std::numeric_limits<double>::lowest();
  for (std::size_t g = 0; g < host.size(); ++g) {
    EXPECT_EQ(got[g], acc);
    acc = std::max(acc, host[g]);
  }
}

TEST_P(VecScan, SegmentedSumRestartsAtFlags) {
  const auto [gr, gc, n, align] = GetParam();
  DistVector<std::uint8_t> flags(*grid, n, align);
  std::vector<std::uint8_t> hf(n, 0);
  for (std::size_t g = 0; g < n; g += 3) hf[g] = 1;  // segments of three
  flags.load(hf);
  vec_scan_exclusive_segmented(*v, flags, Plus<double>{});
  const std::vector<double> got = v->to_host();
  double acc = 0.0;
  for (std::size_t g = 0; g < n; ++g) {
    if (hf[g]) acc = 0.0;
    EXPECT_NEAR(got[g], acc, 1e-12 * (1 + std::abs(acc))) << "g=" << g;
    acc += host[g];
  }
}

TEST_P(VecScan, SegmentedWithNoFlagsEqualsPlainScan) {
  const auto [gr, gc, n, align] = GetParam();
  DistVector<std::uint8_t> flags(*grid, n, align);  // all zero
  DistVector<double> w = *v;
  vec_scan_exclusive_segmented(*v, flags, Plus<double>{});
  vec_scan_exclusive(w, Plus<double>{});
  EXPECT_EQ(v->to_host(), w.to_host());
}

TEST_P(VecScan, SegmentedWithAllFlagsIsAllIdentity) {
  const auto [gr, gc, n, align] = GetParam();
  DistVector<std::uint8_t> flags(*grid, n, align);
  flags.load(std::vector<std::uint8_t>(n, 1));
  vec_scan_exclusive_segmented(*v, flags, Plus<double>{});
  for (double x : v->to_host()) EXPECT_EQ(x, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VecScan,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Values(0, 1, 2),
                       ::testing::Values<std::size_t>(1, 2, 16, 33, 64),
                       ::testing::Values(Align::Linear, Align::Cols,
                                         Align::Rows)));

TEST(VecScan, CyclicPartitionRejected) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistVector<double> v(grid, 16, Align::Cols, Part::Cyclic);
  EXPECT_THROW(vec_scan_exclusive(v, Plus<double>{}), ContractError);
}

TEST(VecScan, MisalignedFlagsRejected) {
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  DistVector<double> v(grid, 16, Align::Cols);
  DistVector<std::uint8_t> flags(grid, 16, Align::Rows);
  EXPECT_THROW(vec_scan_exclusive_segmented(v, flags, Plus<double>{}),
               ContractError);
}

TEST(VecScan, ScanIsProcessorTimeReasonable) {
  // Scan must cost O(n/p + lg p), not O(n): compare p=1 vs p=256.
  const std::size_t n = 4096;
  const auto run = [&](int d) {
    // Processor-time bound with cube constants: pin the hypercube preset
    // (mesh contention at p=256 erodes the modeled speedup).
    Cube::Options opts;
    opts.topology = TopologyKind::Hypercube;
    Cube cube(d, CostParams::cm2(), opts);
    Grid grid = Grid::square(cube);
    DistVector<double> v(grid, n, Align::Linear);
    v.load(random_vector(n, 302));
    cube.clock().reset();
    vec_scan_exclusive(v, Plus<double>{});
    return cube.clock().now_us();
  };
  const double t1 = run(0);
  const double t256 = run(8);
  // With n/p = 16 the lg p start-ups dominate; the win is bounded by
  // n·t_a / (lg p·τ) ≈ 5 here — require a clear multiple-x speedup.
  EXPECT_GT(t1 / t256, 4.0);
}

}  // namespace
}  // namespace vmp
