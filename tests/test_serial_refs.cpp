// Unit tests for the serial reference implementations themselves (the
// oracles the distributed algorithms are judged against) plus the factor
// reconstruction property P·A = L·U for both serial and distributed LU.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/gauss.hpp"
#include "algorithms/serial/lu.hpp"
#include "algorithms/serial/simplex.hpp"
#include "util/workloads.hpp"

namespace vmp {
namespace {

// Reconstruct L·U from an in-place factorization and compare with the
// row-permuted original.
void check_reconstruction(const std::vector<double>& original,
                          const std::vector<double>& lu,
                          const std::vector<std::size_t>& perm,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k <= kmax; ++k) {
        const double l = (k == i) ? 1.0 : lu[i * n + k];
        const double u = lu[k * n + j];
        if (k < i && k <= j) s += l * u;
        if (k == i && k <= j) s += u;  // unit diagonal of L
      }
      const double want = original[perm[i] * n + j];
      EXPECT_NEAR(s, want, 1e-9 * (1 + std::abs(want)))
          << "(" << i << "," << j << ")";
    }
  }
}

class LuReconstruction : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuReconstruction, SerialPaEqualsLu) {
  const std::size_t n = GetParam();
  HostMatrix H = diag_dominant_matrix(n, 201);
  const std::vector<double> original = H.data();
  const serial::LuResult lu = serial::lu_factor(H);
  ASSERT_FALSE(lu.singular);
  check_reconstruction(original, H.data(), lu.perm, n);
}

TEST_P(LuReconstruction, DistributedPaEqualsLu) {
  const std::size_t n = GetParam();
  Cube cube(4, CostParams::cm2());
  Grid grid(cube, 2, 2);
  const HostMatrix H = diag_dominant_matrix(n, 202);
  DistMatrix<double> A(grid, n, n, MatrixLayout::cyclic());
  A.load(H.data());
  const DistLuResult lu = lu_factor(A);
  ASSERT_FALSE(lu.singular);
  check_reconstruction(H.data(), A.to_host(), lu.perm, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuReconstruction,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 24));

TEST(SerialLu, PermIsAPermutation) {
  HostMatrix H = diag_dominant_matrix(20, 203);
  const serial::LuResult lu = serial::lu_factor(H);
  std::vector<bool> seen(20, false);
  for (std::size_t p : lu.perm) {
    ASSERT_LT(p, 20u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(SerialLu, IdentityFactorsTrivially) {
  const std::size_t n = 6;
  HostMatrix H(n, n);
  for (std::size_t i = 0; i < n; ++i) H(i, i) = 1.0;
  const serial::LuResult lu = serial::lu_factor(H);
  ASSERT_FALSE(lu.singular);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(lu.perm[i], i);
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_EQ(H(i, j), i == j ? 1.0 : 0.0);
  }
}

TEST(SerialLu, SolveRecoversKnownSolution) {
  const std::size_t n = 15;
  HostMatrix H = diag_dominant_matrix(n, 204);
  const std::vector<double> xstar = random_vector(n, 205);
  const std::vector<double> b = host_matvec(H, xstar);
  HostMatrix Hc = H;
  const std::vector<double> x = serial::gauss_solve(Hc, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], xstar[i], 1e-9);
}

TEST(SerialLu, FlopCountMatchesCubicFormula) {
  for (std::size_t n : {8ul, 16ul, 32ul}) {
    HostMatrix H = diag_dominant_matrix(n, 206);
    const serial::LuResult lu = serial::lu_factor(H);
    // Exactly sum_{k} (n-k-1)(1 + 2(n-k-1)) = 2n³/3 + O(n²).
    const double expect = 2.0 * std::pow(double(n), 3) / 3.0;
    EXPECT_NEAR(static_cast<double>(lu.flops), expect, 0.5 * expect);
  }
}

// ---------------------------------------------------------------------------
// Serial simplex edge cases (the distributed solver inherits these paths
// through the shared tableau; its agreement is tested in test_simplex).
// ---------------------------------------------------------------------------

TEST(SerialSimplexEdge, NoConstraintsUnboundedWhenProfitable) {
  LpProblem lp;
  lp.nvars = 2;
  lp.ncons = 0;
  lp.c = {1.0, 0.0};
  EXPECT_EQ(serial::simplex_solve(lp).status, LpStatus::Unbounded);
}

TEST(SerialSimplexEdge, NoConstraintsOptimalAtZeroWhenUnprofitable) {
  LpProblem lp;
  lp.nvars = 2;
  lp.ncons = 0;
  lp.c = {-1.0, -2.0};
  const LpSolution s = serial::simplex_solve(lp);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_EQ(s.objective, 0.0);
  EXPECT_EQ(s.x, std::vector<double>({0.0, 0.0}));
}

TEST(SerialSimplexEdge, ZeroObjectiveIsImmediatelyOptimal) {
  LpProblem lp;
  lp.nvars = 3;
  lp.ncons = 2;
  lp.c = {0, 0, 0};
  lp.A = {1, 1, 1, 2, 0, 1};
  lp.b = {5, 4};
  const LpSolution s = serial::simplex_solve(lp);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_EQ(s.iterations, 0u);
  EXPECT_EQ(s.objective, 0.0);
}

TEST(SerialSimplexEdge, RedundantConstraintsAreHarmless) {
  LpProblem lp;
  lp.nvars = 2;
  lp.ncons = 4;
  lp.c = {3, 5};
  lp.A = {1, 0, 1, 0, 0, 2, 3, 2};  // x ≤ 4 twice
  lp.b = {4, 4, 12, 18};
  const LpSolution s = serial::simplex_solve(lp);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-9);
}

TEST(SerialSimplexEdge, DegenerateLpTerminatesUnderBland) {
  // A classic degenerate construction (Beale-like): Dantzig may stall on
  // ties; Bland's rule must terminate.
  LpProblem lp;
  lp.nvars = 4;
  lp.ncons = 3;
  lp.c = {0.75, -150, 0.02, -6};
  lp.A = {0.25, -60, -0.04, 9,  //
          0.5,  -90, -0.02, 3,  //
          0.0,  0,   1,     0};
  lp.b = {0, 0, 1};
  SimplexOptions opts;
  opts.rule = PivotRule::Bland;
  const LpSolution s = serial::simplex_solve(lp, opts);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 0.05, 1e-9);  // known optimum of Beale's example
}

TEST(SerialSimplexEdge, EqualityLikePairOfInequalities) {
  // x + y ≤ 2 and -(x + y) ≤ -2 pin x + y = 2 (Phase I required).
  LpProblem lp;
  lp.nvars = 2;
  lp.ncons = 2;
  lp.c = {1, 0};
  lp.A = {1, 1, -1, -1};
  lp.b = {2, -2};
  const LpSolution s = serial::simplex_solve(lp);
  ASSERT_EQ(s.status, LpStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);  // max x with x + y = 2, y ≥ 0
  EXPECT_GT(s.phase1_iterations, 0u);
}

TEST(SerialSimplexEdge, ValidationRejectsBadShapes) {
  LpProblem lp;
  lp.nvars = 2;
  lp.ncons = 1;
  lp.c = {1};  // wrong length
  lp.A = {1, 1};
  lp.b = {1};
  EXPECT_THROW((void)serial::simplex_solve(lp), ContractError);
}

}  // namespace
}  // namespace vmp
