# Empty dependencies file for least_squares.
# This may be replaced when dependencies are built.
