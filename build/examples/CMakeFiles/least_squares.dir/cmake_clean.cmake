file(REMOVE_RECURSE
  "CMakeFiles/least_squares.dir/least_squares.cpp.o"
  "CMakeFiles/least_squares.dir/least_squares.cpp.o.d"
  "least_squares"
  "least_squares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/least_squares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
