file(REMOVE_RECURSE
  "CMakeFiles/lp_optimizer.dir/lp_optimizer.cpp.o"
  "CMakeFiles/lp_optimizer.dir/lp_optimizer.cpp.o.d"
  "lp_optimizer"
  "lp_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
