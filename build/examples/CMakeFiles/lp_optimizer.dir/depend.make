# Empty dependencies file for lp_optimizer.
# This may be replaced when dependencies are built.
