file(REMOVE_RECURSE
  "CMakeFiles/power_iteration.dir/power_iteration.cpp.o"
  "CMakeFiles/power_iteration.dir/power_iteration.cpp.o.d"
  "power_iteration"
  "power_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
