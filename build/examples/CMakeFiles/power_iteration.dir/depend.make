# Empty dependencies file for power_iteration.
# This may be replaced when dependencies are built.
