# Empty dependencies file for spectral_filter.
# This may be replaced when dependencies are built.
