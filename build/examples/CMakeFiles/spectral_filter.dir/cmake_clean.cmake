file(REMOVE_RECURSE
  "CMakeFiles/spectral_filter.dir/spectral_filter.cpp.o"
  "CMakeFiles/spectral_filter.dir/spectral_filter.cpp.o.d"
  "spectral_filter"
  "spectral_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
