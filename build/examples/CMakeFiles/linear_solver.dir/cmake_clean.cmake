file(REMOVE_RECURSE
  "CMakeFiles/linear_solver.dir/linear_solver.cpp.o"
  "CMakeFiles/linear_solver.dir/linear_solver.cpp.o.d"
  "linear_solver"
  "linear_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
