# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;9;vmprim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_linear_solver "/root/repo/build/examples/linear_solver" "48" "4")
set_tests_properties(example_linear_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;vmprim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lp_optimizer "/root/repo/build/examples/lp_optimizer" "16" "12" "4")
set_tests_properties(example_lp_optimizer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;vmprim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_power_iteration "/root/repo/build/examples/power_iteration" "48" "4")
set_tests_properties(example_power_iteration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;vmprim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_least_squares "/root/repo/build/examples/least_squares" "48" "16" "4")
set_tests_properties(example_least_squares PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;vmprim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_equation "/root/repo/build/examples/heat_equation" "48" "4")
set_tests_properties(example_heat_equation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;vmprim_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectral_filter "/root/repo/build/examples/spectral_filter" "8" "4")
set_tests_properties(example_spectral_filter PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;vmprim_add_example;/root/repo/examples/CMakeLists.txt;0;")
