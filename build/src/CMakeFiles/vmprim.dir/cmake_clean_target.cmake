file(REMOVE_RECURSE
  "libvmprim.a"
)
