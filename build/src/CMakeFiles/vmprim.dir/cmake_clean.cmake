file(REMOVE_RECURSE
  "CMakeFiles/vmprim.dir/algorithms/cg.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/cg.cpp.o.d"
  "CMakeFiles/vmprim.dir/algorithms/fft.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/fft.cpp.o.d"
  "CMakeFiles/vmprim.dir/algorithms/gauss.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/gauss.cpp.o.d"
  "CMakeFiles/vmprim.dir/algorithms/invert.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/invert.cpp.o.d"
  "CMakeFiles/vmprim.dir/algorithms/matmul.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/matmul.cpp.o.d"
  "CMakeFiles/vmprim.dir/algorithms/matvec.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/matvec.cpp.o.d"
  "CMakeFiles/vmprim.dir/algorithms/serial/lu.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/serial/lu.cpp.o.d"
  "CMakeFiles/vmprim.dir/algorithms/serial/simplex.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/serial/simplex.cpp.o.d"
  "CMakeFiles/vmprim.dir/algorithms/simplex.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/simplex.cpp.o.d"
  "CMakeFiles/vmprim.dir/algorithms/tridiag.cpp.o"
  "CMakeFiles/vmprim.dir/algorithms/tridiag.cpp.o.d"
  "CMakeFiles/vmprim.dir/comm/router.cpp.o"
  "CMakeFiles/vmprim.dir/comm/router.cpp.o.d"
  "CMakeFiles/vmprim.dir/hypercube/cost_model.cpp.o"
  "CMakeFiles/vmprim.dir/hypercube/cost_model.cpp.o.d"
  "CMakeFiles/vmprim.dir/hypercube/machine.cpp.o"
  "CMakeFiles/vmprim.dir/hypercube/machine.cpp.o.d"
  "CMakeFiles/vmprim.dir/hypercube/sim_clock.cpp.o"
  "CMakeFiles/vmprim.dir/hypercube/sim_clock.cpp.o.d"
  "CMakeFiles/vmprim.dir/hypercube/thread_pool.cpp.o"
  "CMakeFiles/vmprim.dir/hypercube/thread_pool.cpp.o.d"
  "libvmprim.a"
  "libvmprim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmprim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
