# Empty compiler generated dependencies file for vmprim.
# This may be replaced when dependencies are built.
