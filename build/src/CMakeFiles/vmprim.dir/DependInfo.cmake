
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/cg.cpp" "src/CMakeFiles/vmprim.dir/algorithms/cg.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/cg.cpp.o.d"
  "/root/repo/src/algorithms/fft.cpp" "src/CMakeFiles/vmprim.dir/algorithms/fft.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/fft.cpp.o.d"
  "/root/repo/src/algorithms/gauss.cpp" "src/CMakeFiles/vmprim.dir/algorithms/gauss.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/gauss.cpp.o.d"
  "/root/repo/src/algorithms/invert.cpp" "src/CMakeFiles/vmprim.dir/algorithms/invert.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/invert.cpp.o.d"
  "/root/repo/src/algorithms/matmul.cpp" "src/CMakeFiles/vmprim.dir/algorithms/matmul.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/matmul.cpp.o.d"
  "/root/repo/src/algorithms/matvec.cpp" "src/CMakeFiles/vmprim.dir/algorithms/matvec.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/matvec.cpp.o.d"
  "/root/repo/src/algorithms/serial/lu.cpp" "src/CMakeFiles/vmprim.dir/algorithms/serial/lu.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/serial/lu.cpp.o.d"
  "/root/repo/src/algorithms/serial/simplex.cpp" "src/CMakeFiles/vmprim.dir/algorithms/serial/simplex.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/serial/simplex.cpp.o.d"
  "/root/repo/src/algorithms/simplex.cpp" "src/CMakeFiles/vmprim.dir/algorithms/simplex.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/simplex.cpp.o.d"
  "/root/repo/src/algorithms/tridiag.cpp" "src/CMakeFiles/vmprim.dir/algorithms/tridiag.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/algorithms/tridiag.cpp.o.d"
  "/root/repo/src/comm/router.cpp" "src/CMakeFiles/vmprim.dir/comm/router.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/comm/router.cpp.o.d"
  "/root/repo/src/hypercube/cost_model.cpp" "src/CMakeFiles/vmprim.dir/hypercube/cost_model.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/hypercube/cost_model.cpp.o.d"
  "/root/repo/src/hypercube/machine.cpp" "src/CMakeFiles/vmprim.dir/hypercube/machine.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/hypercube/machine.cpp.o.d"
  "/root/repo/src/hypercube/sim_clock.cpp" "src/CMakeFiles/vmprim.dir/hypercube/sim_clock.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/hypercube/sim_clock.cpp.o.d"
  "/root/repo/src/hypercube/thread_pool.cpp" "src/CMakeFiles/vmprim.dir/hypercube/thread_pool.cpp.o" "gcc" "src/CMakeFiles/vmprim.dir/hypercube/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
