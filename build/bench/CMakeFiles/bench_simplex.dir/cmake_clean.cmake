file(REMOVE_RECURSE
  "CMakeFiles/bench_simplex.dir/bench_simplex.cpp.o"
  "CMakeFiles/bench_simplex.dir/bench_simplex.cpp.o.d"
  "bench_simplex"
  "bench_simplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
