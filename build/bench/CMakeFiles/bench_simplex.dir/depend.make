# Empty dependencies file for bench_simplex.
# This may be replaced when dependencies are built.
