# Empty dependencies file for bench_collectives.
# This may be replaced when dependencies are built.
