# Empty compiler generated dependencies file for bench_gauss.
# This may be replaced when dependencies are built.
