file(REMOVE_RECURSE
  "CMakeFiles/bench_gauss.dir/bench_gauss.cpp.o"
  "CMakeFiles/bench_gauss.dir/bench_gauss.cpp.o.d"
  "bench_gauss"
  "bench_gauss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
