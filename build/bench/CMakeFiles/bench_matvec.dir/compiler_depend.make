# Empty compiler generated dependencies file for bench_matvec.
# This may be replaced when dependencies are built.
