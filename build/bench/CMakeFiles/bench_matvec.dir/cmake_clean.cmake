file(REMOVE_RECURSE
  "CMakeFiles/bench_matvec.dir/bench_matvec.cpp.o"
  "CMakeFiles/bench_matvec.dir/bench_matvec.cpp.o.d"
  "bench_matvec"
  "bench_matvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
