# Empty dependencies file for bench_naive_vs_primitive.
# This may be replaced when dependencies are built.
