file(REMOVE_RECURSE
  "CMakeFiles/bench_naive_vs_primitive.dir/bench_naive_vs_primitive.cpp.o"
  "CMakeFiles/bench_naive_vs_primitive.dir/bench_naive_vs_primitive.cpp.o.d"
  "bench_naive_vs_primitive"
  "bench_naive_vs_primitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naive_vs_primitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
