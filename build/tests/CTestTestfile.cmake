# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bits[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_embed[1]_include.cmake")
include("/root/repo/build/tests/test_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_vector_ops[1]_include.cmake")
include("/root/repo/build/tests/test_matvec[1]_include.cmake")
include("/root/repo/build/tests/test_gauss[1]_include.cmake")
include("/root/repo/build/tests/test_simplex[1]_include.cmake")
include("/root/repo/build/tests/test_naive[1]_include.cmake")
include("/root/repo/build/tests/test_allport_shift[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_accounting[1]_include.cmake")
include("/root/repo/build/tests/test_serial_refs[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_scan_ops[1]_include.cmake")
include("/root/repo/build/tests/test_matmul_invert[1]_include.cmake")
include("/root/repo/build/tests/test_permute_tridiag[1]_include.cmake")
include("/root/repo/build/tests/test_exhaustive_small[1]_include.cmake")
include("/root/repo/build/tests/test_contracts[1]_include.cmake")
include("/root/repo/build/tests/test_sort_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_algebra_props[1]_include.cmake")
