file(REMOVE_RECURSE
  "CMakeFiles/test_accounting.dir/test_accounting.cpp.o"
  "CMakeFiles/test_accounting.dir/test_accounting.cpp.o.d"
  "test_accounting"
  "test_accounting.pdb"
  "test_accounting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
