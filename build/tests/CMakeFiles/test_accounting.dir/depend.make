# Empty dependencies file for test_accounting.
# This may be replaced when dependencies are built.
