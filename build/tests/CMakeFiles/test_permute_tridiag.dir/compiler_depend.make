# Empty compiler generated dependencies file for test_permute_tridiag.
# This may be replaced when dependencies are built.
