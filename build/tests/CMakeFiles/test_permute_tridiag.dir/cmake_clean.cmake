file(REMOVE_RECURSE
  "CMakeFiles/test_permute_tridiag.dir/test_permute_tridiag.cpp.o"
  "CMakeFiles/test_permute_tridiag.dir/test_permute_tridiag.cpp.o.d"
  "test_permute_tridiag"
  "test_permute_tridiag.pdb"
  "test_permute_tridiag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_permute_tridiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
