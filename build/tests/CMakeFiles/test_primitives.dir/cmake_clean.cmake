file(REMOVE_RECURSE
  "CMakeFiles/test_primitives.dir/test_primitives.cpp.o"
  "CMakeFiles/test_primitives.dir/test_primitives.cpp.o.d"
  "test_primitives"
  "test_primitives.pdb"
  "test_primitives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
