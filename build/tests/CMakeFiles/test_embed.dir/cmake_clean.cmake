file(REMOVE_RECURSE
  "CMakeFiles/test_embed.dir/test_embed.cpp.o"
  "CMakeFiles/test_embed.dir/test_embed.cpp.o.d"
  "test_embed"
  "test_embed.pdb"
  "test_embed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
