# Empty compiler generated dependencies file for test_embed.
# This may be replaced when dependencies are built.
