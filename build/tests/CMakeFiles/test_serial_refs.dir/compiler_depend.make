# Empty compiler generated dependencies file for test_serial_refs.
# This may be replaced when dependencies are built.
