file(REMOVE_RECURSE
  "CMakeFiles/test_serial_refs.dir/test_serial_refs.cpp.o"
  "CMakeFiles/test_serial_refs.dir/test_serial_refs.cpp.o.d"
  "test_serial_refs"
  "test_serial_refs.pdb"
  "test_serial_refs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_serial_refs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
