file(REMOVE_RECURSE
  "CMakeFiles/test_scan_ops.dir/test_scan_ops.cpp.o"
  "CMakeFiles/test_scan_ops.dir/test_scan_ops.cpp.o.d"
  "test_scan_ops"
  "test_scan_ops.pdb"
  "test_scan_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
