# Empty compiler generated dependencies file for test_scan_ops.
# This may be replaced when dependencies are built.
