file(REMOVE_RECURSE
  "CMakeFiles/test_fft.dir/test_fft.cpp.o"
  "CMakeFiles/test_fft.dir/test_fft.cpp.o.d"
  "test_fft"
  "test_fft.pdb"
  "test_fft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
