file(REMOVE_RECURSE
  "CMakeFiles/test_gauss.dir/test_gauss.cpp.o"
  "CMakeFiles/test_gauss.dir/test_gauss.cpp.o.d"
  "test_gauss"
  "test_gauss.pdb"
  "test_gauss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gauss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
