# Empty compiler generated dependencies file for test_matvec.
# This may be replaced when dependencies are built.
