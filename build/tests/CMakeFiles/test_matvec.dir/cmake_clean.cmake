file(REMOVE_RECURSE
  "CMakeFiles/test_matvec.dir/test_matvec.cpp.o"
  "CMakeFiles/test_matvec.dir/test_matvec.cpp.o.d"
  "test_matvec"
  "test_matvec.pdb"
  "test_matvec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matvec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
