file(REMOVE_RECURSE
  "CMakeFiles/test_matmul_invert.dir/test_matmul_invert.cpp.o"
  "CMakeFiles/test_matmul_invert.dir/test_matmul_invert.cpp.o.d"
  "test_matmul_invert"
  "test_matmul_invert.pdb"
  "test_matmul_invert[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matmul_invert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
