# Empty compiler generated dependencies file for test_matmul_invert.
# This may be replaced when dependencies are built.
