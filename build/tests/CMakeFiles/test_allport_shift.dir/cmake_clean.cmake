file(REMOVE_RECURSE
  "CMakeFiles/test_allport_shift.dir/test_allport_shift.cpp.o"
  "CMakeFiles/test_allport_shift.dir/test_allport_shift.cpp.o.d"
  "test_allport_shift"
  "test_allport_shift.pdb"
  "test_allport_shift[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allport_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
