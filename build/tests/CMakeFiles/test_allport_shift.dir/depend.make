# Empty dependencies file for test_allport_shift.
# This may be replaced when dependencies are built.
