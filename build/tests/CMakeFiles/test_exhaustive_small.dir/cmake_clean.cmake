file(REMOVE_RECURSE
  "CMakeFiles/test_exhaustive_small.dir/test_exhaustive_small.cpp.o"
  "CMakeFiles/test_exhaustive_small.dir/test_exhaustive_small.cpp.o.d"
  "test_exhaustive_small"
  "test_exhaustive_small.pdb"
  "test_exhaustive_small[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exhaustive_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
