# Empty dependencies file for test_exhaustive_small.
# This may be replaced when dependencies are built.
