# Empty compiler generated dependencies file for test_simplex.
# This may be replaced when dependencies are built.
