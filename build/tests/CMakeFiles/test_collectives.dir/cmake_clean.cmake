file(REMOVE_RECURSE
  "CMakeFiles/test_collectives.dir/test_collectives.cpp.o"
  "CMakeFiles/test_collectives.dir/test_collectives.cpp.o.d"
  "test_collectives"
  "test_collectives.pdb"
  "test_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
