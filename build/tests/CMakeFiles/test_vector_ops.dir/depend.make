# Empty dependencies file for test_vector_ops.
# This may be replaced when dependencies are built.
