file(REMOVE_RECURSE
  "CMakeFiles/test_vector_ops.dir/test_vector_ops.cpp.o"
  "CMakeFiles/test_vector_ops.dir/test_vector_ops.cpp.o.d"
  "test_vector_ops"
  "test_vector_ops.pdb"
  "test_vector_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
