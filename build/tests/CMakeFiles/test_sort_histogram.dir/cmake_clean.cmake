file(REMOVE_RECURSE
  "CMakeFiles/test_sort_histogram.dir/test_sort_histogram.cpp.o"
  "CMakeFiles/test_sort_histogram.dir/test_sort_histogram.cpp.o.d"
  "test_sort_histogram"
  "test_sort_histogram.pdb"
  "test_sort_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sort_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
