file(REMOVE_RECURSE
  "CMakeFiles/test_algebra_props.dir/test_algebra_props.cpp.o"
  "CMakeFiles/test_algebra_props.dir/test_algebra_props.cpp.o.d"
  "test_algebra_props"
  "test_algebra_props.pdb"
  "test_algebra_props[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algebra_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
